// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/simulator.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/stopwatch.h"
#include "core/oracle.h"
#include "core/twbg.h"
#include "lock/resource_state.h"

namespace twbg::sim {

namespace {

obs::Event FaultEvent(const robustness::Fault& fault) {
  obs::Event event;
  event.kind = obs::EventKind::kFaultInjected;
  event.tid = fault.txn;
  if (fault.kind == robustness::FaultKind::kStallShard) {
    event.rid = static_cast<lock::ResourceId>(fault.shard);  // shard index
  }
  event.a = static_cast<uint64_t>(fault.kind);
  event.b = fault.at;
  event.value = static_cast<double>(fault.duration);
  event.detail = fault.ToString();
  return event;
}

}  // namespace

Status SimConfig::Validate() const {
  if (workload.concurrency < 1) {
    return Status::InvalidArgument(
        "SimConfig: workload.concurrency must be >= 1");
  }
  if (record_trace && trace_capacity == 0) {
    return Status::InvalidArgument(
        "SimConfig: record_trace requires trace_capacity >= 1");
  }
  TWBG_RETURN_IF_ERROR(scheduler.Validate());
  if (scheduler.use_span_estimates && span_tracer == nullptr) {
    return Status::InvalidArgument(
        "SimConfig: scheduler.use_span_estimates requires span_tracer");
  }
  const bool adaptive =
      period_controller != nullptr ||
      scheduler.policy != sched::SchedulerPolicy::kFixedPeriod;
  if (adaptive && detection_period == 0) {
    return Status::InvalidArgument(
        "SimConfig: closed-loop scheduling requires detection_period > 0");
  }
  return robustness.Validate();
}

Result<std::unique_ptr<Simulator>> Simulator::Create(
    const SimConfig& config,
    std::unique_ptr<baselines::DetectionStrategy> strategy) {
  if (strategy == nullptr) {
    return Status::InvalidArgument("Simulator: strategy must not be null");
  }
  TWBG_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<Simulator>(config, std::move(strategy));
}

Simulator::Simulator(const SimConfig& config,
                     std::unique_ptr<baselines::DetectionStrategy> strategy)
    : config_(config),
      strategy_(std::move(strategy)),
      generator_(config.workload),
      lock_manager_(config.admission),
      trace_(config.record_trace ? config.trace_capacity : 0) {
  TWBG_CHECK(strategy_ != nullptr);
  TWBG_CHECK(config_.Validate().ok());
  lock_manager_.set_event_bus(&bus_);
  lock_manager_.set_span_tracer(config_.span_tracer);
  if (config_.record_trace) bus_.Subscribe(&trace_sink_);
  if (config_.enable_watchdog) {
    watchdog_ = std::make_unique<obs::Watchdog>(&bus_, config_.watchdog);
    bus_.Subscribe(watchdog_.get());
  }
  if (!config_.fault_plan.empty()) {
    injector_ = std::make_unique<robustness::FaultInjector>(config_.fault_plan);
  }
  if (config_.period_controller != nullptr) {
    controller_ = config_.period_controller;
  } else if (config_.scheduler.policy !=
             sched::SchedulerPolicy::kFixedPeriod) {
    owned_controller_ = sched::MakePeriodController(
        config_.scheduler, config_.detection_period);
    controller_ = owned_controller_.get();
  }
  if (config_.detection_period > 0) {
    const size_t period =
        controller_ != nullptr ? controller_->period() : config_.detection_period;
    metrics_.final_detection_period = period;
    metrics_.min_detection_period = period;
    metrics_.max_detection_period = period;
  }
  if (controller_ != nullptr && config_.scheduler.use_span_estimates) {
    // Validate() guarantees span_tracer is set with the flag on.
    estimator_ = std::make_unique<obs::SpanEstimator>();
    config_.span_tracer->Subscribe(estimator_.get());
  }
}

Simulator::~Simulator() {
  if (estimator_ != nullptr) {
    config_.span_tracer->Unsubscribe(estimator_.get());
  }
}

Status Simulator::StreamEventsTo(const std::string& path) {
  if (jsonl_ != nullptr) {
    return Status::FailedPrecondition("already streaming events");
  }
  Result<std::unique_ptr<obs::JsonlSink>> sink = obs::JsonlSink::Open(path);
  if (!sink.ok()) return sink.status();
  jsonl_ = std::move(sink).value();
  bus_.Subscribe(jsonl_.get());
  return Status::OK();
}

void Simulator::Emit(obs::Event event) {
  if (!bus_.active()) return;
  bus_.Emit(event);
}

void Simulator::SpawnUpToConcurrency() {
  const uint64_t max_inflight = config_.robustness.admission.max_inflight_txns;
  while (live_.size() < config_.workload.concurrency) {
    size_t logical;
    auto eligible = restart_queue_.end();
    for (auto it = restart_queue_.begin(); it != restart_queue_.end(); ++it) {
      if (it->not_before_tick <= metrics_.ticks) {
        eligible = it;
        break;
      }
    }
    const bool spawnable = eligible != restart_queue_.end() ||
                           spawned_ < config_.workload.num_transactions;
    if (!spawnable) return;
    if (max_inflight != 0 && live_.size() >= max_inflight) {
      // Admission control sheds the Begin; the spawn is retried on a
      // later call (typically next tick).
      ++metrics_.admission_rejects;
      obs::Event event;
      event.kind = obs::EventKind::kAdmissionReject;
      event.a = live_.size();
      event.b = max_inflight;
      Emit(event);
      return;
    }
    if (eligible != restart_queue_.end()) {
      logical = eligible->logical;
      restart_queue_.erase(eligible);
    } else {
      logical = spawned_++;
      scripts_[logical] = generator_.NextScript();
    }
    Execution e;
    e.logical = logical;
    e.tid = next_tid_++;
    e.script = scripts_[logical];
    e.began_at = metrics_.ticks;
    const lock::TransactionId tid = e.tid;
    live_[tid] = std::move(e);
    costs_.Set(tid, 1.0);
    // Prevention schemes key their timestamps off the logical id, which
    // is stable across restarts (required for their progress guarantee).
    strategy_->OnSpawn(tid, logical);
    const size_t restarts = restart_counts_[logical];
    obs::Event event;
    event.kind = restarts > 0 ? obs::EventKind::kTxnRestart
                              : obs::EventKind::kTxnBegin;
    event.tid = tid;
    event.a = restarts;
    Emit(event);
    if (obs::Tracing(config_.span_tracer)) {
      config_.span_tracer->OpenTxn(tid, restarts > 0 ? "restart" : "fresh");
    }
  }
}

void Simulator::KillAndRestart(lock::TransactionId tid) {
  auto it = live_.find(tid);
  if (it == live_.end()) return;
  metrics_.wasted_ops += it->second.ops_done;
  ++metrics_.restarts;
  obs::Event event;
  event.kind = obs::EventKind::kTxnAbort;
  event.tid = tid;
  event.a = 1;  // killed, not a voluntary abort
  Emit(event);
  if (obs::Tracing(config_.span_tracer)) {
    config_.span_tracer->CloseTxn(tid, /*aborted=*/true);
  }
  const size_t logical = it->second.logical;
  const size_t count = ++restart_counts_[logical];
  const size_t backoff =
      std::min(count, config_.restart_backoff_cap) * config_.restart_backoff;
  restart_queue_.push_back(PendingRestart{logical, metrics_.ticks + backoff});
  costs_.Erase(tid);
  live_.erase(it);
}

void Simulator::Consume(const baselines::StrategyOutcome& outcome) {
  metrics_.cycles_found += outcome.cycles_found;
  metrics_.no_abort_resolutions += outcome.repositioned;
  metrics_.detector_work += outcome.work;
  metrics_.graph_dirty_resources += outcome.num_dirty_resources;
  metrics_.graph_cached_resources += outcome.num_cached_resources;
  metrics_.graph_edges_rebuilt += outcome.edges_rebuilt;
  metrics_.graph_edges_reused += outcome.edges_reused;
  if (!outcome.aborted.empty() || outcome.repositioned > 0) {
    acted_this_tick_ = true;
  }
  for (lock::TransactionId victim : outcome.aborted) {
    ++metrics_.deadlock_aborts;
    if (config_.measure_false_aborts && pre_stuck_.count(victim) == 0) {
      ++metrics_.false_aborts;
    }
    KillAndRestart(victim);
  }
}

void Simulator::InvokeStrategy(bool periodic, lock::TransactionId blocked) {
  if (config_.measure_false_aborts) {
    pre_stuck_.clear();
    for (lock::TransactionId tid :
         core::AnalyzeByReduction(lock_manager_.table()).stuck) {
      pre_stuck_.insert(tid);
    }
  }
  if (bus_.active()) {
    obs::Event start;
    start.kind = obs::EventKind::kPassStart;
    start.tid = blocked;
    start.a = periodic ? 1 : 0;
    bus_.Emit(start);
  }
  obs::SpanTracer* tracer = config_.span_tracer;
  const uint64_t pass_span =
      obs::Tracing(tracer) ? tracer->Open(obs::SpanKind::kPass) : 0;
  if (pass_span != 0 && !periodic) tracer->SetContext(pass_span, blocked, 0);
  common::Stopwatch watch;
  baselines::StrategyOutcome outcome =
      periodic ? strategy_->OnPeriodic(lock_manager_, costs_)
               : strategy_->OnBlock(lock_manager_, costs_, blocked);
  const int64_t elapsed_ns = watch.ElapsedNanos();
  if (pass_span != 0) {
    // Pass-span close contract: a = cycles resolved, b = the pass's cost
    // in the host's cost unit — the strategy's deterministic work units,
    // never wall time (passes take zero ticks on the manual clock).
    tracer->Close(pass_span, outcome.cycles_found, outcome.work);
  }
  metrics_.detector_seconds += static_cast<double>(elapsed_ns) / 1e9;
  ++metrics_.detector_invocations;
  // Deterministic cost signal for the period controller: the strategy's
  // own work units, never wall time.
  last_pass_cycles_ = outcome.cycles_found;
  last_pass_work_ = outcome.work;
  if (bus_.active()) {
    obs::Event end;
    end.kind = obs::EventKind::kPassEnd;
    end.tid = blocked;
    end.a = outcome.cycles_found;
    end.b = outcome.aborted.size();
    end.value = static_cast<double>(elapsed_ns);
    bus_.Emit(end);
  }
  Consume(outcome);
}

bool Simulator::RecoverFromStall() {
  // The strategy failed to resolve a real deadlock (the oracle and the
  // H/W-TWBG agree by Theorem 1).  Break every remaining cycle by
  // aborting its min-cost member — aborting a merely-stuck waiter queued
  // behind the cycle would leave the deadlock intact and livelock the run.
  bool acted = false;
  for (;;) {
    core::HwTwbg graph = core::HwTwbg::Build(lock_manager_.table());
    std::vector<std::vector<lock::TransactionId>> cycles =
        graph.ElementaryCycles(/*max_cycles=*/1);
    if (cycles.empty()) break;
    lock::TransactionId victim = cycles[0].front();
    for (lock::TransactionId tid : cycles[0]) {
      if (costs_.Get(tid) < costs_.Get(victim)) victim = tid;
    }
    ++metrics_.missed_deadlocks;
    obs::Event event;
    event.kind = obs::EventKind::kDetectorMiss;
    event.tid = victim;
    Emit(event);
    lock_manager_.ReleaseAll(victim);
    KillAndRestart(victim);
    acted = true;
  }
  acted_this_tick_ |= acted;
  return acted;
}

void Simulator::ApplyTickFaults() {
  if (injector_ == nullptr) return;
  for (const robustness::Fault& fault :
       injector_->TakeTickFaults(metrics_.ticks)) {
    switch (fault.kind) {
      case robustness::FaultKind::kStallShard:
        // The simulator is unsharded: a stalled partition freezes every
        // execution (detection keeps running — the detector is not part
        // of the stalled partition).
        stall_until_ = std::max(stall_until_, metrics_.ticks + fault.duration);
        ++metrics_.faults_injected;
        Emit(FaultEvent(fault));
        acted_this_tick_ = true;
        break;
      case robustness::FaultKind::kCrashTxn: {
        auto it = live_.find(fault.txn);
        if (it == live_.end()) break;  // target not live: fault is a no-op
        ++metrics_.faults_injected;
        Emit(FaultEvent(fault));
        lock_manager_.ReleaseAll(fault.txn);
        KillAndRestart(fault.txn);
        acted_this_tick_ = true;
        break;
      }
      case robustness::FaultKind::kDelayGrant: {
        auto it = live_.find(fault.txn);
        if (it == live_.end()) break;
        ++metrics_.faults_injected;
        Emit(FaultEvent(fault));
        it->second.resume_after = std::max(
            it->second.resume_after,
            metrics_.ticks + static_cast<size_t>(fault.duration));
        break;
      }
      case robustness::FaultKind::kDropWakeup:
        break;  // excluded by TakeTickFaults; fires at wakeup observation
    }
  }
}

void Simulator::MaybeRunPeriodicPass() {
  if (config_.detection_period == 0) return;
  if (controller_ == nullptr) {
    // Historical fixed-period schedule, byte-identical to before the
    // scheduling layer existed.
    if (metrics_.ticks % config_.detection_period == 0) {
      InvokeStrategy(/*periodic=*/true, lock::kInvalidTransaction);
    }
    return;
  }
  if (metrics_.ticks < next_pass_tick_) return;
  InvokeStrategy(/*periodic=*/true, lock::kInvalidTransaction);
  sched::PassSample sample;
  if (estimator_ != nullptr) {
    // Span-measured inputs (SchedulerOptions::use_span_estimates): the
    // lambda numerator is every cycle a pass span resolved in the window
    // (continuous passes included — the flat path only sees the periodic
    // pass's own count), and B is the time-averaged blocked population
    // integrated from closed wait spans instead of an instantaneous
    // blocked count at pass end.  C stays the just-closed pass's work
    // units — identical to that pass span's `b` counter.
    const obs::SpanSampleStats stats =
        estimator_->Take(config_.span_tracer->now());
    sample.elapsed = stats.window_ns;
    sample.detection_cost = static_cast<double>(last_pass_work_);
    sample.cycles_resolved = stats.cycles;
    sample.blocked_txns = static_cast<uint64_t>(stats.avg_blocked() + 0.5);
  } else {
    sample.elapsed = metrics_.ticks - last_pass_tick_;
    sample.detection_cost = static_cast<double>(last_pass_work_);
    sample.cycles_resolved = last_pass_cycles_;
    sample.blocked_txns = lock_manager_.BlockedTransactions().size();
  }
  if (const std::optional<sched::PeriodRetune> retune =
          controller_->OnPassComplete(sample)) {
    ++metrics_.period_retunes;
    obs::Event event;
    event.kind = obs::EventKind::kPeriodRetuned;
    event.a = retune->old_period;
    event.b = retune->new_period;
    event.value = retune->deadlock_rate;
    Emit(event);
  }
  const size_t period = std::max<size_t>(controller_->period(), 1);
  metrics_.final_detection_period = period;
  metrics_.min_detection_period =
      std::min(metrics_.min_detection_period, period);
  metrics_.max_detection_period =
      std::max(metrics_.max_detection_period, period);
  last_pass_tick_ = metrics_.ticks;
  next_pass_tick_ = metrics_.ticks + period;
}

void Simulator::DeadlineKill(lock::TransactionId tid) {
  ++metrics_.deadline_aborts;
  lock_manager_.ReleaseAll(tid);
  KillAndRestart(tid);
  acted_this_tick_ = true;
}

bool Simulator::BackoffOrKill(Execution& e) {
  if (!e.backoff.has_value()) {
    e.backoff.emplace(config_.robustness.retry,
                      config_.workload.seed ^
                          (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(
                                                       e.tid)));
  }
  if (e.backoff->Exhausted()) {
    DeadlineKill(e.tid);  // invalidates e
    return false;
  }
  e.resume_after =
      metrics_.ticks + static_cast<size_t>(e.backoff->NextDelay());
  return true;
}

void Simulator::ExpireDeadlines() {
  const robustness::DeadlineOptions& dl = config_.robustness.deadline;
  if (dl.lock_wait == 0 && dl.txn_budget == 0) return;
  std::vector<lock::TransactionId> order;
  order.reserve(live_.size());
  for (const auto& [tid, e] : live_) order.push_back(tid);
  for (lock::TransactionId tid : order) {
    auto it = live_.find(tid);
    if (it == live_.end()) continue;  // killed earlier in this sweep
    Execution& e = it->second;
    // Whole-transaction budget: out of time regardless of state.
    if (dl.txn_budget != 0 && metrics_.ticks - e.began_at >= dl.txn_budget) {
      DeadlineKill(tid);
      continue;
    }
    if (dl.lock_wait == 0 || !e.blocked_at.has_value()) continue;
    if (!lock_manager_.IsBlocked(tid)) continue;  // granted, not yet observed
    if (metrics_.ticks - *e.blocked_at < dl.lock_wait) continue;
    // The wait expired: withdraw the pending request (queue invariants
    // restored, holdings intact) and re-issue it after a backoff.  This
    // wait is counted as deadline-expired, NOT as a completed wait
    // (wait_ticks) and NOT as a detector resolution.
    const lock::TxnLockInfo* info = lock_manager_.Info(tid);
    TWBG_CHECK(info != nullptr && info->blocked_on.has_value());
    const lock::ResourceId rid = *info->blocked_on;
    const lock::LockMode mode = info->blocked_mode;
    const uint64_t span = info->wait_span;
    Result<std::vector<lock::TransactionId>> granted =
        lock_manager_.CancelWait(tid);
    TWBG_CHECK(granted.ok());
    ++metrics_.deadline_expired_waits;
    ++e.deadline_expiries;
    e.blocked_at.reset();
    TWBG_CHECK(e.next_op > 0);
    --e.next_op;  // the withdrawn request is re-issued on resume
    acted_this_tick_ = true;
    const bool escalate =
        dl.abort_after != 0 && e.deadline_expiries >= dl.abort_after;
    obs::Event event;
    event.kind = obs::EventKind::kDeadlineExpired;
    event.tid = tid;
    event.rid = rid;
    event.mode = mode;
    event.span = span;
    event.a = e.deadline_expiries;
    event.b = escalate ? 1 : 0;
    Emit(event);
    if (escalate) {
      DeadlineKill(tid);
      continue;
    }
    BackoffOrKill(e);
  }
}

SimMetrics Simulator::Run() {
  if (config_.span_tracer != nullptr) {
    // Spans share the bus's logical clock: the simulator tick.  Pinning
    // the manual clock before the first spawn keeps the initial txn
    // spans (and the estimator's first window) off the wall clock.
    config_.span_tracer->set_time(metrics_.ticks);
    if (estimator_ != nullptr) estimator_->Reset(config_.span_tracer->now());
  }
  SpawnUpToConcurrency();
  size_t stall = 0;
  while (metrics_.committed < config_.workload.num_transactions &&
         metrics_.ticks < config_.max_ticks) {
    bus_.set_time(metrics_.ticks);
    if (config_.span_tracer != nullptr) {
      config_.span_tracer->set_time(metrics_.ticks);
    }
    acted_this_tick_ = false;
    bool progress = false;
    ApplyTickFaults();
    ExpireDeadlines();

    if (metrics_.ticks >= stall_until_) {
      std::vector<lock::TransactionId> order;
      order.reserve(live_.size());
      for (const auto& [tid, e] : live_) order.push_back(tid);
      for (lock::TransactionId tid : order) {
        auto it = live_.find(tid);
        if (it == live_.end()) continue;  // killed by a strategy call
        if (lock_manager_.IsBlocked(tid)) continue;
        Execution& e = it->second;
        if (metrics_.ticks < e.resume_after) continue;  // backing off
        if (e.blocked_at.has_value()) {
          if (injector_ != nullptr && injector_->TakeDropWakeup(tid)) {
            // The wakeup is lost: the grant stands in the lock manager
            // but this execution does not observe it until next tick.
            ++metrics_.faults_injected;
            robustness::Fault fault;
            fault.kind = robustness::FaultKind::kDropWakeup;
            fault.txn = tid;
            Emit(FaultEvent(fault));
            e.resume_after = metrics_.ticks + 1;
            continue;
          }
          // The wait that began at *blocked_at ended with a grant.
          const double waited =
              static_cast<double>(metrics_.ticks - *e.blocked_at);
          metrics_.wait_ticks.Add(waited);
          e.blocked_at.reset();
          obs::Event event;
          event.kind = obs::EventKind::kWaitEnd;
          event.tid = tid;
          // wait_span outlives the wakeup, so this correlates with the
          // kLockBlock/kLockWakeup pair of the wait that just ended.
          event.span = lock_manager_.WaitSpan(tid);
          event.value = waited;
          Emit(event);
        }
        if (e.next_op >= e.script.ops.size()) {
          // Strict 2PL commit: release everything at once.
          costs_.Erase(tid);
          lock_manager_.ReleaseAll(tid);
          ++metrics_.committed;
          obs::Event event;
          event.kind = obs::EventKind::kTxnCommit;
          event.tid = tid;
          Emit(event);
          if (obs::Tracing(config_.span_tracer)) {
            config_.span_tracer->CloseTxn(tid, /*aborted=*/false);
          }
          live_.erase(it);
          progress = true;
          SpawnUpToConcurrency();
          continue;
        }
        const auto& [rid, mode] = e.script.ops[e.next_op];
        const uint64_t watermark =
            config_.robustness.admission.queue_depth_watermark;
        if (watermark != 0) {
          const lock::ResourceState* res = lock_manager_.table().Find(rid);
          // Holders (conversions) bypass admission: shedding a conversion
          // cannot shrink the queue it already heads.
          if (res != nullptr && res->FindHolder(tid) == nullptr) {
            robustness::AdmissionContext ctx;
            ctx.queue_depth = res->queue().size();
            robustness::WatermarkAdmission gate(config_.robustness.admission);
            if (!gate.AdmitAcquire(ctx).ok()) {
              ++metrics_.admission_rejects;
              obs::Event event;
              event.kind = obs::EventKind::kAdmissionReject;
              event.tid = tid;
              event.rid = rid;
              event.a = ctx.queue_depth;
              event.b = watermark;
              Emit(event);
              // The op is NOT consumed: it is retried after backoff.
              BackoffOrKill(e);
              continue;
            }
          }
        }
        Result<lock::RequestOutcome> outcome =
            lock_manager_.Acquire(tid, rid, mode);
        TWBG_CHECK(outcome.ok());
        ++e.ops_done;
        costs_.Set(tid, 1.0 + static_cast<double>(e.ops_done));
        // The blocked request is granted in place later, so the op is
        // consumed either way.
        ++e.next_op;
        // Grant/block/convert events are emitted by the lock manager, which
        // has this run's bus attached.
        if (*outcome == lock::RequestOutcome::kBlocked) {
          e.blocked_at = metrics_.ticks;
          if (strategy_->is_continuous()) {
            InvokeStrategy(/*periodic=*/false, tid);
          }
        } else {
          progress = true;
        }
      }
    }

    MaybeRunPeriodicPass();

    metrics_.blocked_ticks += lock_manager_.BlockedTransactions().size();
    if (progress || acted_this_tick_) {
      stall = 0;
    } else if (++stall >= config_.stall_patience) {
      if (RecoverFromStall()) stall = 0;
      SpawnUpToConcurrency();
    }
    SpawnUpToConcurrency();
    ++metrics_.ticks;
  }
  metrics_.timed_out =
      metrics_.committed < config_.workload.num_transactions;
  metrics_.trace_dropped = trace_.dropped();
  if (jsonl_ != nullptr) {
    jsonl_->Flush();
    metrics_.trace_write_errors = jsonl_->write_errors();
  }
  if (watchdog_ != nullptr) {
    metrics_.starvation_alerts = watchdog_->starvation_alerts();
    metrics_.convoy_alerts = watchdog_->convoy_alerts();
  }
  return metrics_;
}

}  // namespace twbg::sim
