// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/trace.h"

#include "common/string_util.h"

namespace twbg::sim {

std::string_view ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpawn:
      return "spawn";
    case TraceEventKind::kGrant:
      return "grant";
    case TraceEventKind::kBlock:
      return "block";
    case TraceEventKind::kWakeup:
      return "wakeup";
    case TraceEventKind::kCommit:
      return "commit";
    case TraceEventKind::kAbort:
      return "abort";
    case TraceEventKind::kDetect:
      return "detect";
    case TraceEventKind::kMiss:
      return "miss";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::string out = common::Format(
      "[%6zu] %-6s", tick, std::string(sim::ToString(kind)).c_str());
  if (tid != 0) out += common::Format(" T%u", tid);
  if (rid != 0) {
    out += common::Format(" R%u %s", rid,
                          std::string(lock::ToString(mode)).c_str());
  }
  if (kind == TraceEventKind::kDetect || kind == TraceEventKind::kSpawn) {
    out += common::Format(" (%zu)", detail);
  }
  return out;
}

void SimTrace::Record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> SimTrace::Filter(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

void TraceEventSink::OnEvent(const obs::Event& event) {
  TraceEvent out;
  out.tick = static_cast<size_t>(event.time);
  out.tid = event.tid;
  switch (event.kind) {
    case obs::EventKind::kTxnBegin:
    case obs::EventKind::kTxnRestart:
      out.kind = TraceEventKind::kSpawn;
      out.detail = static_cast<size_t>(event.a);
      break;
    case obs::EventKind::kTxnCommit:
      out.kind = TraceEventKind::kCommit;
      break;
    case obs::EventKind::kTxnAbort:
      out.kind = TraceEventKind::kAbort;
      break;
    case obs::EventKind::kLockGrant:
      out.kind = TraceEventKind::kGrant;
      out.rid = event.rid;
      out.mode = event.mode;
      break;
    case obs::EventKind::kLockBlock:
      out.kind = TraceEventKind::kBlock;
      out.rid = event.rid;
      out.mode = event.mode;
      break;
    case obs::EventKind::kLockConvert:
      // a==1: the conversion was granted; a==0: the converter blocked.
      out.kind = event.a == 1 ? TraceEventKind::kGrant : TraceEventKind::kBlock;
      out.rid = event.rid;
      out.mode = event.mode;
      break;
    case obs::EventKind::kWaitEnd:
      out.kind = TraceEventKind::kWakeup;
      break;
    case obs::EventKind::kPassEnd:
      out.kind = TraceEventKind::kDetect;
      out.detail = static_cast<size_t>(event.a);
      break;
    case obs::EventKind::kDetectorMiss:
      out.kind = TraceEventKind::kMiss;
      break;
    default:
      return;  // no classic-trace equivalent
  }
  trace_->Record(out);
}

std::string SimTrace::ToString() const {
  std::string out;
  if (dropped_ > 0) {
    out += common::Format("... %zu earlier events dropped ...\n", dropped_);
  }
  for (const TraceEvent& event : events_) {
    out += event.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::sim
