// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Metrics collected by one simulator run — the columns of the comparison
// experiments.

#ifndef TWBG_SIM_METRICS_H_
#define TWBG_SIM_METRICS_H_

#include <cstddef>
#include <string>

#include "sim/stats.h"

namespace twbg::sim {

/// Aggregate outcome of a Simulator::Run.
struct SimMetrics {
  /// Logical transactions committed.
  size_t committed = 0;
  /// Transaction executions killed by the detection strategy.
  size_t deadlock_aborts = 0;
  /// Executions killed by the driver's stall recovery because the
  /// strategy missed a real deadlock (0 for complete detectors).
  size_t missed_deadlocks = 0;
  /// Strategy aborts of transactions the oracle says were NOT stuck
  /// (timeouts produce these); only counted when the config enables the
  /// oracle cross-check.
  size_t false_aborts = 0;
  /// Re-executions scheduled after aborts.
  size_t restarts = 0;
  /// Deadlock cycles the strategy reported.
  size_t cycles_found = 0;
  /// Resolutions that aborted nobody (H/W-TWBG TDR-2) — the paper's
  /// headline feature.
  size_t no_abort_resolutions = 0;
  /// Lock requests whose work was thrown away by aborts.
  size_t wasted_ops = 0;
  /// Simulated ticks consumed.
  size_t ticks = 0;
  /// Strategy invocations (OnBlock + OnPeriodic).
  size_t detector_invocations = 0;
  /// Strategy-reported work units.
  size_t detector_work = 0;
  /// Incremental graph-cache totals across strategy invocations (zeros
  /// when the strategy builds from scratch): resources recomputed vs
  /// reused, and edges on each side.
  size_t graph_dirty_resources = 0;
  size_t graph_cached_resources = 0;
  size_t graph_edges_rebuilt = 0;
  size_t graph_edges_reused = 0;
  /// Wall-clock seconds inside the strategy.
  double detector_seconds = 0.0;
  /// Sum over ticks of the number of blocked transactions (lost
  /// concurrency integral).
  size_t blocked_ticks = 0;
  /// True when the run hit max_ticks before committing everything.
  bool timed_out = false;
  /// Distribution of completed lock waits, in ticks (block -> grant; waits
  /// ended by abort are not counted).
  SampleStats wait_ticks;
  /// Trace events the bounded ring discarded (0 when tracing is off or the
  /// capacity sufficed) — nonzero means trace-based analyses saw a suffix
  /// of the run only.
  size_t trace_dropped = 0;
  /// JSONL export lines lost to write failures (mirror of
  /// obs::JsonlSink::write_errors for the Simulator::StreamEventsTo sink;
  /// 0 when streaming is off or every write succeeded).
  size_t trace_write_errors = 0;
  /// Watchdog starvation alerts raised during the run (0 when
  /// SimConfig::enable_watchdog is off).
  size_t starvation_alerts = 0;
  /// Watchdog convoy alerts raised during the run (0 likewise).
  size_t convoy_alerts = 0;
  /// Lock waits ended by deadline expiry (the waiter was withdrawn from
  /// the queue).  Disjoint from detector resolution: these waits are NOT
  /// counted in wait_ticks (which measures block -> grant) and their
  /// transactions are NOT deadlock_aborts.
  size_t deadline_expired_waits = 0;
  /// Executions killed by deadline policy — abort-after-N expiries,
  /// exhausted retry budget, or transaction-budget overrun.  Disjoint
  /// from deadlock_aborts (detector-chosen victims) and missed_deadlocks
  /// (driver stall recovery).
  size_t deadline_aborts = 0;
  /// Begins/acquires shed by admission control (each later retried).
  size_t admission_rejects = 0;
  /// Planned faults that actually fired during the run.
  size_t faults_injected = 0;
  /// Sharded-service counters, populated by concurrent drivers
  /// (bench_concurrent, the stress suite) from
  /// txn::ConcurrentLockService::shard_stats and pause_times_ns; the
  /// single-threaded simulator leaves them zero and ToString omits them.
  /// Shard-mutex acquisitions that found the mutex already held.
  size_t shard_mutex_waits = 0;
  /// Total shard-mutex hold time across shards, nanoseconds.
  size_t shard_hold_ns = 0;
  /// Detection passes completed (stop-the-world or pauseless).
  size_t detector_passes = 0;
  /// Total client-visible pause time across passes, nanoseconds (whole
  /// pass under kStopTheWorld; max(publish, apply) under kEpochDelta).
  size_t detector_pause_ns = 0;
  /// Pauseless (kEpochDelta) counters, likewise populated by concurrent
  /// drivers and zero elsewhere.
  /// Per-shard snapshot publishes (num_shards per pauseless pass).
  size_t snapshot_publishes = 0;
  /// Total shard-publish pause time, nanoseconds.
  size_t snapshot_publish_ns = 0;
  /// Total seal-to-apply detection lag across pauseless passes,
  /// nanoseconds.
  size_t snapshot_lag_ns = 0;
  /// Resolution commands dropped by stamp validation (each retried by a
  /// later pass).
  size_t resolutions_rejected = 0;
  /// Closed-loop scheduling counters (sched::PeriodController; zero when
  /// the run used a fixed detection period).
  /// Period retunes the controller applied during the run.
  size_t period_retunes = 0;
  /// The detection period in effect when the run ended, ticks (equals
  /// the configured detection_period when no controller moved it; 0 when
  /// periodic detection was disabled).
  size_t final_detection_period = 0;
  /// Smallest and largest periods in effect at any point of the run
  /// (both equal final_detection_period when nothing retuned).
  size_t min_detection_period = 0;
  size_t max_detection_period = 0;

  /// Committed transactions per 1000 ticks.
  double Throughput() const {
    return ticks == 0 ? 0.0 : 1000.0 * static_cast<double>(committed) /
                                  static_cast<double>(ticks);
  }

  /// One-line summary.
  std::string ToString() const;
};

}  // namespace twbg::sim

#endif  // TWBG_SIM_METRICS_H_
