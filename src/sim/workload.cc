// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/workload.h"

#include <numeric>

#include "common/macros.h"

namespace twbg::sim {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_resources, config.zipf_theta),
      weight_total_(std::accumulate(config.mode_weights.begin(),
                                    config.mode_weights.end(), 0.0)) {
  TWBG_CHECK(config.num_resources >= 1);
  TWBG_CHECK(config.min_ops >= 1);
  TWBG_CHECK(config.min_ops <= config.max_ops);
  TWBG_CHECK(weight_total_ > 0.0);
}

lock::LockMode WorkloadGenerator::SampleMode() {
  double pick = rng_.NextDouble() * weight_total_;
  for (size_t i = 0; i < config_.mode_weights.size(); ++i) {
    pick -= config_.mode_weights[i];
    if (pick < 0.0) return lock::kRealModes[i];
  }
  return lock::LockMode::kX;
}

TxnScript WorkloadGenerator::NextScript() {
  TxnScript script;
  const size_t ops = static_cast<size_t>(rng_.NextInRange(
      static_cast<int64_t>(config_.min_ops),
      static_cast<int64_t>(config_.max_ops)));
  std::vector<lock::ResourceId> planned;
  for (size_t i = 0; i < ops; ++i) {
    if (!planned.empty() && rng_.NextBernoulli(config_.conversion_prob)) {
      // Conversion: revisit a planned resource with a fresh (potentially
      // stronger) mode; the lock manager folds it via Conv.
      lock::ResourceId rid = rng_.Pick(planned);
      script.ops.emplace_back(rid, SampleMode());
      continue;
    }
    lock::ResourceId rid =
        static_cast<lock::ResourceId>(zipf_.Sample(rng_) + 1);
    planned.push_back(rid);
    script.ops.emplace_back(rid, SampleMode());
  }
  return script;
}

}  // namespace twbg::sim
