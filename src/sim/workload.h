// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Synthetic workload generation for the evaluation harness.  The paper has
// no workload of its own (it is an algorithms paper), so the experiments
// use the standard locking-performance setup of its references [2, 3, 18]:
// a closed system with a fixed multiprogramming level, Zipf-skewed
// resource access (hot spots drive conflicts), a configurable lock-mode
// mix and a lock-conversion probability (the case the paper uniquely
// handles).

#ifndef TWBG_SIM_WORKLOAD_H_
#define TWBG_SIM_WORKLOAD_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "lock/types.h"

namespace twbg::sim {

/// Parameters of the synthetic workload.
struct WorkloadConfig {
  uint64_t seed = 1;
  /// Logical transactions the run must commit.
  size_t num_transactions = 200;
  /// Multiprogramming level (live transactions at any time).
  size_t concurrency = 8;
  size_t num_resources = 64;
  /// Zipf skew of resource selection (0 = uniform).
  double zipf_theta = 0.7;
  /// Lock requests per transaction, uniform in [min_ops, max_ops].
  size_t min_ops = 3;
  size_t max_ops = 10;
  /// Relative weights for IS, IX, S, SIX, X (need not sum to 1).
  std::array<double, 5> mode_weights = {0.25, 0.20, 0.30, 0.05, 0.20};
  /// Probability an op re-requests an already planned resource with a
  /// stronger mode (a lock conversion at run time).
  double conversion_prob = 0.20;
};

/// The lock requests of one transaction, in program order.
struct TxnScript {
  std::vector<std::pair<lock::ResourceId, lock::LockMode>> ops;
};

/// Deterministic script factory: same seed, same scripts.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  /// Generates the next transaction's script.
  TxnScript NextScript();

  const WorkloadConfig& config() const { return config_; }

 private:
  lock::LockMode SampleMode();

  WorkloadConfig config_;
  common::Rng rng_;
  common::ZipfSampler zipf_;
  double weight_total_;
};

}  // namespace twbg::sim

#endif  // TWBG_SIM_WORKLOAD_H_
