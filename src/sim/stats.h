// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Exact sample statistics (mean / max / percentiles) for the simulator's
// wait-time distributions.  Runs are bounded, so samples are stored and
// percentiles computed by sorting on demand.

#ifndef TWBG_SIM_STATS_H_
#define TWBG_SIM_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace twbg::sim {

/// Accumulates nonnegative samples; cheap to copy with the run metrics.
class SampleStats {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double mean() const;
  double max() const;
  /// p in [0, 100]; empty distributions report 0.
  double Percentile(double p) const;

  /// "n=.. mean=.. p50=.. p95=.. max=.." (or "n=0").
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  // Percentile() sorts lazily, so both pieces of state are logically
  // const-mutable (the sample multiset never changes, only its order).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace twbg::sim

#endif  // TWBG_SIM_STATS_H_
