// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace twbg::sim {

void SampleStats::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleStats::EnsureSorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank on the sorted samples.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string SampleStats::Summary() const {
  if (samples_.empty()) return "n=0";
  return common::Format("n=%zu mean=%.1f p50=%.1f p95=%.1f max=%.1f",
                        count(), mean(), Percentile(50), Percentile(95),
                        max());
}

}  // namespace twbg::sim
