// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Bounded event trace for simulator runs: what happened, when, to whom.
// Used to debug workload pathologies (restart storms, convoys) and by
// tests asserting event ordering.  The buffer is a ring: when full, the
// oldest events are dropped and counted.

#ifndef TWBG_SIM_TRACE_H_
#define TWBG_SIM_TRACE_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "lock/types.h"
#include "obs/bus.h"

namespace twbg::sim {

/// What a trace event describes.
enum class TraceEventKind : uint8_t {
  kSpawn,    ///< execution started (fresh or restart)
  kGrant,    ///< a lock request was granted immediately
  kBlock,    ///< a lock request blocked
  kWakeup,   ///< a blocked request was granted (wait ended)
  kCommit,   ///< execution committed
  kAbort,    ///< execution killed (deadlock victim or stall recovery)
  kDetect,   ///< a detection invocation ran (detail = cycles found)
  kMiss,     ///< stall recovery broke a cycle the strategy missed
};

std::string_view ToString(TraceEventKind kind);

/// One event.  Fields not applicable to the kind are zero.
struct TraceEvent {
  size_t tick = 0;
  TraceEventKind kind = TraceEventKind::kSpawn;
  lock::TransactionId tid = 0;
  lock::ResourceId rid = 0;
  lock::LockMode mode = lock::LockMode::kNL;
  /// kDetect: cycles found; kSpawn: restart count; otherwise 0.
  size_t detail = 0;

  std::string ToString() const;
};

/// Fixed-capacity ring of TraceEvents.
class SimTrace {
 public:
  explicit SimTrace(size_t capacity = 16384) : capacity_(capacity) {}

  void Record(TraceEvent event);

  /// Retained events, oldest first.
  const std::deque<TraceEvent>& events() const { return events_; }

  /// Events dropped because the ring was full.
  size_t dropped() const { return dropped_; }

  /// Events of one kind, oldest first.
  std::vector<TraceEvent> Filter(TraceEventKind kind) const;

  /// One event per line.
  std::string ToString() const;

 private:
  size_t capacity_;
  size_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

/// Bridges the structured event bus (obs::EventBus) onto a SimTrace so the
/// classic trace keeps its exact shape while the simulator emits through
/// the bus.  The mapping is a projection: lifecycle, lock, wait-end, pass
/// and miss events become the corresponding TraceEventKind (conversions
/// collapse to grant/block by outcome); purely observational kinds with no
/// classic equivalent (kLockRelease, kLockWakeup, kUprReposition,
/// kPassStart, kStep1/kStep2, kCycleResolved) are dropped.  The trace tick
/// is the bus's logical time.
class TraceEventSink : public obs::EventSink {
 public:
  /// The sink records into `trace`, which must outlive it.  Not owned.
  explicit TraceEventSink(SimTrace* trace) : trace_(trace) {}

  void OnEvent(const obs::Event& event) override;

 private:
  SimTrace* trace_;
};

}  // namespace twbg::sim

#endif  // TWBG_SIM_TRACE_H_
