// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/metrics.h"

#include "common/string_util.h"

namespace twbg::sim {

std::string SimMetrics::ToString() const {
  std::string out = common::Format(
      "committed=%zu ticks=%zu thrpt=%.2f/ktick aborts=%zu restarts=%zu "
      "cycles=%zu tdr2=%zu missed=%zu false=%zu wasted_ops=%zu "
      "blocked_ticks=%zu det_calls=%zu det_work=%zu det_ms=%.2f wait[%s]%s",
      committed, ticks, Throughput(), deadlock_aborts, restarts, cycles_found,
      no_abort_resolutions, missed_deadlocks, false_aborts, wasted_ops,
      blocked_ticks, detector_invocations, detector_work,
      detector_seconds * 1e3, wait_ticks.Summary().c_str(),
      timed_out ? " TIMED-OUT" : "");
  if (trace_dropped > 0) {
    out += common::Format(" trace_dropped=%zu", trace_dropped);
  }
  if (trace_write_errors > 0) {
    out += common::Format(" trace_write_errors=%zu", trace_write_errors);
  }
  if (starvation_alerts + convoy_alerts > 0) {
    out += common::Format(" watchdog[starved=%zu convoys=%zu]",
                          starvation_alerts, convoy_alerts);
  }
  if (deadline_expired_waits + deadline_aborts + admission_rejects +
          faults_injected >
      0) {
    out += common::Format(
        " robust[expired=%zu dl_aborts=%zu shed=%zu faults=%zu]",
        deadline_expired_waits, deadline_aborts, admission_rejects,
        faults_injected);
  }
  if (snapshot_publishes + resolutions_rejected > 0) {
    out += common::Format(
        " pauseless[publishes=%zu publish_ns=%zu lag_ns=%zu rejected=%zu]",
        snapshot_publishes, snapshot_publish_ns, snapshot_lag_ns,
        resolutions_rejected);
  }
  if (period_retunes > 0) {
    out += common::Format(
        " sched[retunes=%zu period=%zu min=%zu max=%zu]", period_retunes,
        final_detection_period, min_detection_period, max_detection_period);
  }
  if (graph_dirty_resources + graph_cached_resources > 0) {
    out += common::Format(
        " gcache[dirty=%zu cached=%zu rebuilt=%zu reused=%zu]",
        graph_dirty_resources, graph_cached_resources, graph_edges_rebuilt,
        graph_edges_reused);
  }
  return out;
}

}  // namespace twbg::sim
