// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Closed-system discrete-tick simulator: a fixed multiprogramming level of
// transactions executes generated lock-request scripts against the lock
// manager; a pluggable DetectionStrategy handles deadlocks (continuously
// on blocks and/or periodically every `detection_period` ticks); aborted
// executions restart until every logical transaction commits.
//
// The driver carries a stall-recovery safety net: when no transaction can
// move and the strategy resolves nothing, the reduction oracle is
// consulted and one stuck transaction is force-aborted.  For complete
// detectors this path never fires; for the coarse baselines (classic WFG,
// ACD) the `missed_deadlocks` counter is exactly the deadlocks their graph
// cannot see.

#ifndef TWBG_SIM_SIMULATOR_H_
#define TWBG_SIM_SIMULATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "baselines/strategy.h"
#include "core/cost_table.h"
#include "lock/lock_manager.h"
#include "obs/sinks.h"
#include "obs/span.h"
#include "obs/span_sinks.h"
#include "obs/watchdog.h"
#include "sched/period_controller.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "sim/workload.h"
#include "txn/robustness/robustness.h"

namespace twbg::sim {

/// Simulator parameters beyond the workload itself.
struct SimConfig {
  WorkloadConfig workload;
  /// OnPeriodic every this many ticks (0 disables periodic detection).
  /// With a period controller attached (see `scheduler` and
  /// `period_controller`) this is only the *initial* period; the
  /// controller retunes it after every periodic pass.
  size_t detection_period = 10;
  /// Closed-loop period scheduling (docs/TUNING.md).  The default
  /// kFixedPeriod policy keeps the historical fixed-period behavior; any
  /// other policy requires detection_period > 0 and drives the pass
  /// schedule from a sched::PeriodController fed with each pass's work
  /// and cycles-resolved counts (all in ticks — deterministic).
  sched::SchedulerOptions scheduler;
  /// Externally owned controller carried across runs (closed-loop
  /// experiments retune through workload phase changes this way).  When
  /// set it overrides `scheduler`; detection_period must still be > 0.
  /// Not owned; must outlive the simulator.
  sched::PeriodController* period_controller = nullptr;
  /// Hard tick budget; exceeded runs report timed_out.
  size_t max_ticks = 2'000'000;
  /// Ticks without progress or strategy action before stall recovery.
  /// Kept larger than typical timeout horizons so timeout strategies get
  /// to act before the driver steps in.
  size_t stall_patience = 50;
  /// Cross-check strategy aborts against the oracle (costly; used by the
  /// timeout false-abort experiment).
  bool measure_false_aborts = false;
  /// Restart backoff: an aborted transaction waits
  /// min(restart_count, restart_backoff_cap) * restart_backoff ticks
  /// before re-running.  Immediate deterministic restarts re-create the
  /// same deadlock against the same partners forever; every real system
  /// delays retries.
  size_t restart_backoff = 4;
  size_t restart_backoff_cap = 16;
  /// Record a bounded event trace (see sim/trace.h), readable through
  /// Simulator::trace() after Run.
  bool record_trace = false;
  size_t trace_capacity = 16384;
  /// Admission policy for new lock requests (kGroupMode is the §2
  /// total-vs-group-mode ablation).
  lock::AdmissionPolicy admission = lock::AdmissionPolicy::kTotalMode;
  /// Attach an obs::Watchdog to the run's bus: starvation and convoy
  /// alerts appear as kStarvation / kConvoy events and are mirrored into
  /// SimMetrics::starvation_alerts / convoy_alerts.
  bool enable_watchdog = false;
  /// Thresholds for the watchdog (ignored unless enable_watchdog).
  obs::WatchdogOptions watchdog;
  /// Causal span tracer shared with the lock manager (null = no span
  /// tracing).  The simulator drives the tracer's manual clock with the
  /// tick counter, opens/closes txn spans around each execution, brackets
  /// every strategy invocation with a kPass span (closed with the
  /// strategy's cycles-found and work counters), and the lock manager
  /// opens/closes the wait spans — so do not also attach the same tracer
  /// to the strategy's own DetectorOptions, or passes are double-counted.
  /// Not owned; must outlive the simulator.  Required when
  /// scheduler.use_span_estimates is set.
  obs::SpanTracer* span_tracer = nullptr;
  /// Robustness knobs (deadlines in ticks, admission watermarks, retry
  /// backoff in ticks).  All disabled by default.  An expired wait
  /// withdraws the pending request with full invariant maintenance and
  /// re-issues it after a seeded decorrelated-jitter backoff; expiry
  /// escalates to a kill-and-restart per the abort-after-N / retry-budget
  /// / txn-budget policies.  Counted in SimMetrics::deadline_expired_waits
  /// and deadline_aborts, disjoint from detector resolution.
  robustness::RobustnessOptions robustness;
  /// Deterministic faults, addressed by tick (empty = none).  kCrashTxn /
  /// kDelayGrant target the execution with that transaction id; a
  /// kStallShard freezes every execution for its duration (the simulator
  /// is unsharded); kDropWakeup defers the target's wakeup observation by
  /// one tick.
  robustness::FaultPlan fault_plan;

  /// Rejects out-of-domain combinations (zero concurrency, zero trace
  /// capacity with tracing on, span-estimate scheduling without a span
  /// tracer, bad robustness knobs).
  Status Validate() const;
};

/// One simulation run.  Not reusable.
class Simulator {
 public:
  /// Validated construction: rejects bad configs (SimConfig::Validate)
  /// with kInvalidArgument instead of crashing.
  static Result<std::unique_ptr<Simulator>> Create(
      const SimConfig& config,
      std::unique_ptr<baselines::DetectionStrategy> strategy);

  /// Direct construction for valid configs (TWBG_CHECKs Validate()).
  Simulator(const SimConfig& config,
            std::unique_ptr<baselines::DetectionStrategy> strategy);

  /// Detaches the owned span estimator from the config's tracer.
  ~Simulator();

  /// Runs to completion (or tick budget) and returns the metrics.
  SimMetrics Run();

  /// Event trace of the run (empty unless config.record_trace).
  const SimTrace& trace() const { return trace_; }

  /// The run's structured event bus.  Subscribe sinks (obs::CollectorSink,
  /// obs::JsonlSink, obs::LatencyObserver, ...) before Run() to stream
  /// every lifecycle / lock / wait / detection event; with no sinks the
  /// bus is inactive and emission is skipped entirely.  The bus's logical
  /// time is the simulator tick.
  obs::EventBus& event_bus() { return bus_; }

  /// Streams every bus event of the run to `path` as JSON lines (the
  /// `--trace-out` format twbg-trace ingests).  Call before Run(); the
  /// sink lives for the simulator's lifetime and its write failures are
  /// mirrored into SimMetrics::trace_write_errors.
  Status StreamEventsTo(const std::string& path);

  /// The run's watchdog, or nullptr when config.enable_watchdog is off.
  const obs::Watchdog* watchdog() const { return watchdog_.get(); }

  /// The run's lock manager.  After a non-timed-out Run() every
  /// transaction has committed and released, so the manager is empty —
  /// the fault-injection differential suite asserts quiescence
  /// (CheckInvariants clean, no leaked waiters) through this accessor.
  const lock::LockManager& lock_manager() const { return lock_manager_; }

 private:
  struct Execution {
    size_t logical = 0;
    lock::TransactionId tid = lock::kInvalidTransaction;
    TxnScript script;
    size_t next_op = 0;
    size_t ops_done = 0;
    /// Tick at which the current wait began, if blocked.
    std::optional<size_t> blocked_at;
    /// Tick at which this execution started (transaction-budget clock).
    size_t began_at = 0;
    /// Earliest tick at which the execution may act again (retry backoff
    /// after a deadline expiry / admission rejection, delay-grant fault).
    size_t resume_after = 0;
    /// Lock waits of this execution ended by deadline expiry.
    uint32_t deadline_expiries = 0;
    /// Backoff sequence for this execution's retries (created on first
    /// use, seeded from the workload seed and the execution tid).
    std::optional<robustness::RetryBackoff> backoff;
  };

  // Starts executions until the MPL is reached or the workload is
  // exhausted.
  void SpawnUpToConcurrency();

  // Handles a strategy outcome: accounts cycles/work, kills aborted
  // executions and schedules their restarts.
  void Consume(const baselines::StrategyOutcome& outcome);

  // Invokes OnPeriodic (periodic=true) or OnBlock and consumes the
  // outcome, timing the call and cross-checking the oracle if enabled.
  void InvokeStrategy(bool periodic, lock::TransactionId blocked);

  // Kills the execution running as `tid` (locks already released) and
  // schedules a restart of its logical transaction.
  void KillAndRestart(lock::TransactionId tid);

  // Stall recovery: oracle-driven forced abort; returns true if it acted.
  bool RecoverFromStall();

  // Fires this tick's planned faults (crash / delay-grant / stall).
  void ApplyTickFaults();

  // Runs the scheduled periodic pass when one is due this tick, and
  // feeds the closed-loop controller (if any) with the pass's sample —
  // retunes land as kPeriodRetuned events and SimMetrics counters.
  void MaybeRunPeriodicPass();

  // Cancels expired lock waits and enforces the escalation policies
  // (abort-after-N, retry exhaustion, transaction budget).
  void ExpireDeadlines();

  // Kills `tid` under a deadline policy: releases its locks, restarts it,
  // and counts a deadline abort (NOT a deadlock abort).
  void DeadlineKill(lock::TransactionId tid);

  // Arms e.backoff lazily and schedules the next retry; returns false —
  // and kills the execution — when the retry budget is exhausted.
  bool BackoffOrKill(Execution& e);

  // Emits onto the bus when any sink is subscribed.
  void Emit(obs::Event event);

  SimConfig config_;
  std::unique_ptr<baselines::DetectionStrategy> strategy_;
  WorkloadGenerator generator_;
  lock::LockManager lock_manager_;
  core::CostTable costs_;
  SimMetrics metrics_;
  struct PendingRestart {
    size_t logical = 0;
    size_t not_before_tick = 0;
  };

  std::map<lock::TransactionId, Execution> live_;
  std::map<size_t, TxnScript> scripts_;  // logical -> script (for restarts)
  std::vector<PendingRestart> restart_queue_;
  std::map<size_t, size_t> restart_counts_;  // logical -> restarts so far
  std::set<lock::TransactionId> pre_stuck_;  // oracle snapshot (cross-check)
  size_t spawned_ = 0;
  lock::TransactionId next_tid_ = 1;
  bool acted_this_tick_ = false;
  SimTrace trace_{0};  // re-initialized from the config in the ctor
  obs::EventBus bus_;
  TraceEventSink trace_sink_{&trace_};  // subscribed iff record_trace
  std::unique_ptr<obs::JsonlSink> jsonl_;    // StreamEventsTo
  std::unique_ptr<obs::Watchdog> watchdog_;  // config.enable_watchdog
  // Measured scheduler inputs, subscribed to config.span_tracer iff
  // scheduler.use_span_estimates and a controller is in play.
  std::unique_ptr<obs::SpanEstimator> estimator_;
  std::unique_ptr<robustness::FaultInjector> injector_;  // config.fault_plan
  size_t stall_until_ = 0;  // kStallShard freeze horizon

  // Closed-loop scheduling state.  controller_ is null for the
  // historical fixed-period modulo schedule; otherwise it points at
  // either owned_controller_ or config.period_controller.
  std::unique_ptr<sched::PeriodController> owned_controller_;
  sched::PeriodController* controller_ = nullptr;
  size_t next_pass_tick_ = 0;  // controller_ schedule only
  size_t last_pass_tick_ = 0;
  // Stats of the most recent strategy invocation (InvokeStrategy),
  // consumed by the controller sample.
  size_t last_pass_cycles_ = 0;
  size_t last_pass_work_ = 0;
};

}  // namespace twbg::sim

#endif  // TWBG_SIM_SIMULATOR_H_
