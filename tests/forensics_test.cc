// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Forensics-layer tests: wait-span correlation through the lock manager,
// the flight-recorder ring, the starvation/convoy watchdog, cycle
// post-mortems, re-entrant bus emission, and JSONL write-error surfacing.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "core/cost_table.h"
#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "core/script.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/flight_recorder.h"
#include "obs/sinks.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"

namespace twbg {
namespace {

using obs::Event;
using obs::EventKind;

// -- wait spans ------------------------------------------------------------

TEST(WaitSpanTest, BlockWakeupAndWaitEndShareOneSpanId) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  lock::LockManager manager;
  manager.set_event_bus(&bus);

  ASSERT_TRUE(manager.Acquire(1, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE(manager.Acquire(2, 1, lock::LockMode::kX).ok());  // blocks
  ASSERT_EQ(sink.Count(EventKind::kLockBlock), 1u);
  const Event block = sink.Filter(EventKind::kLockBlock)[0];
  EXPECT_GT(block.span, 0u);
  EXPECT_EQ(manager.WaitSpan(2), block.span);

  manager.ReleaseAll(1);  // T2 wakes up
  ASSERT_EQ(sink.Count(EventKind::kLockWakeup), 1u);
  const Event wakeup = sink.Filter(EventKind::kLockWakeup)[0];
  EXPECT_EQ(wakeup.tid, 2u);
  EXPECT_EQ(wakeup.span, block.span);
  // The span survives the wakeup so the driver can stamp kWaitEnd.
  EXPECT_EQ(manager.WaitSpan(2), block.span);
}

TEST(WaitSpanTest, EveryBlockOpensAFreshMonotonicSpan) {
  lock::LockManager manager;
  ASSERT_TRUE(manager.Acquire(1, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE(manager.Acquire(2, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE(manager.Acquire(3, 1, lock::LockMode::kX).ok());
  const uint64_t span2 = manager.WaitSpan(2);
  const uint64_t span3 = manager.WaitSpan(3);
  EXPECT_GT(span2, 0u);
  EXPECT_GT(span3, span2);  // manager-wide monotonic
  EXPECT_EQ(manager.WaitSpan(1), 0u);  // never blocked
}

TEST(WaitSpanTest, BlockedConversionCarriesSpan) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  lock::LockManager manager;
  manager.set_event_bus(&bus);
  ASSERT_TRUE(manager.Acquire(1, 1, lock::LockMode::kIX).ok());
  ASSERT_TRUE(manager.Acquire(2, 1, lock::LockMode::kIX).ok());
  // T1's IX -> SIX conversion blocks on T2's IX.
  ASSERT_TRUE(manager.Acquire(1, 1, lock::LockMode::kSIX).ok());
  const std::vector<Event> conversions = sink.Filter(EventKind::kLockConvert);
  ASSERT_EQ(conversions.size(), 1u);
  EXPECT_EQ(conversions[0].a, 0u);  // blocked
  EXPECT_GT(conversions[0].span, 0u);
  EXPECT_EQ(conversions[0].span, manager.WaitSpan(1));
}

TEST(WaitSpanTest, SimulatorWaitEndCarriesTheBlockSpan) {
  sim::SimConfig config;
  config.workload.seed = 11;
  config.workload.num_transactions = 40;
  config.workload.concurrency = 5;
  config.workload.num_resources = 6;
  config.detection_period = 5;
  sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  obs::CollectorSink sink;
  sim.event_bus().Subscribe(&sink);
  sim::SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.committed, 40u);

  const std::vector<Event> ends = sink.Filter(EventKind::kWaitEnd);
  ASSERT_FALSE(ends.empty());
  // Every wait-end names a span that some earlier block opened for the
  // same transaction.
  std::set<uint64_t> blocked_spans;
  for (const Event& event : sink.events()) {
    if ((event.kind == EventKind::kLockBlock ||
         event.kind == EventKind::kLockConvert) &&
        event.span != 0) {
      blocked_spans.insert(event.span);
    }
  }
  for (const Event& end : ends) {
    EXPECT_NE(end.span, 0u);
    EXPECT_TRUE(blocked_spans.count(end.span)) << "span " << end.span;
  }
}

// -- flight recorder -------------------------------------------------------

Event MakeEvent(EventKind kind, uint32_t tid, uint32_t rid = 0) {
  Event event;
  event.kind = kind;
  event.tid = tid;
  event.rid = rid;
  return event;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  obs::FlightRecorder recorder(100);
  EXPECT_EQ(recorder.capacity(), 128u);
  obs::FlightRecorder tiny(1);
  EXPECT_EQ(tiny.capacity(), 16u);  // floor
}

TEST(FlightRecorderTest, RingKeepsTheNewestEvents) {
  obs::EventBus bus;
  obs::FlightRecorder recorder(16);
  bus.Subscribe(&recorder);
  for (uint32_t i = 1; i <= 40; ++i) {
    bus.Emit(MakeEvent(EventKind::kLockGrant, i));
  }
  EXPECT_EQ(recorder.recorded(), 40u);
  const std::vector<Event> tail = recorder.Tail(100);
  ASSERT_EQ(tail.size(), 16u);  // capacity-bounded
  EXPECT_EQ(tail.front().tid, 25u);  // oldest retained
  EXPECT_EQ(tail.back().tid, 40u);   // newest
  const std::vector<Event> last3 = recorder.Tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].tid, 38u);
  EXPECT_EQ(last3[2].tid, 40u);
}

TEST(FlightRecorderTest, PerTxnAndPerResourceTails) {
  obs::FlightRecorder recorder(64);
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 1, 10));
  recorder.OnEvent(MakeEvent(EventKind::kLockBlock, 2, 10));
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 1, 11));
  recorder.OnEvent(MakeEvent(EventKind::kLockWakeup, 2, 10));
  const std::vector<Event> t1 = recorder.TailForTxn(1, 10);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[0].rid, 10u);
  EXPECT_EQ(t1[1].rid, 11u);
  const std::vector<Event> r10 = recorder.TailForResource(10, 10);
  ASSERT_EQ(r10.size(), 3u);
  EXPECT_EQ(r10.back().kind, EventKind::kLockWakeup);
  EXPECT_FALSE(recorder.Dump(10).empty());
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Tail(10).empty());
}

TEST(FlightRecorderTest, PerResourceTailEvictsAtExactCapacityBoundary) {
  obs::FlightRecorder recorder(16);
  // Fill the ring to exactly capacity with one resource's events.
  for (uint32_t i = 1; i <= 16; ++i) {
    recorder.OnEvent(MakeEvent(EventKind::kLockGrant, i, 10));
  }
  ASSERT_EQ(recorder.recorded(), recorder.capacity());
  // At the boundary nothing has been evicted yet: the per-resource tail
  // still sees every event, oldest first.
  std::vector<Event> r10 = recorder.TailForResource(10, 100);
  ASSERT_EQ(r10.size(), 16u);
  EXPECT_EQ(r10.front().tid, 1u);
  EXPECT_EQ(r10.back().tid, 16u);
  // One more event (a different resource) overwrites the oldest slot —
  // the resource tail must lose exactly its oldest entry, nothing else.
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 99, 20));
  r10 = recorder.TailForResource(10, 100);
  ASSERT_EQ(r10.size(), 15u);
  EXPECT_EQ(r10.front().tid, 2u);
  EXPECT_EQ(r10.back().tid, 16u);
  const std::vector<Event> r20 = recorder.TailForResource(20, 100);
  ASSERT_EQ(r20.size(), 1u);
  EXPECT_EQ(r20[0].tid, 99u);
}

TEST(FlightRecorderTest, InterleavedTxnAndResourceTailsShareSlots) {
  obs::FlightRecorder recorder(16);
  // One event is the subject of both views: T5 blocking on R10.
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 1, 10));
  recorder.OnEvent(MakeEvent(EventKind::kLockBlock, 5, 10));  // shared slot
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 5, 11));
  recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 2, 10));
  const std::vector<Event> t5 = recorder.TailForTxn(5, 10);
  const std::vector<Event> r10 = recorder.TailForResource(10, 10);
  ASSERT_EQ(t5.size(), 2u);
  ASSERT_EQ(r10.size(), 3u);
  // Both tails surface the same underlying slot, field for field.
  EXPECT_EQ(t5[0].kind, EventKind::kLockBlock);
  EXPECT_EQ(r10[1].kind, EventKind::kLockBlock);
  EXPECT_EQ(t5[0].tid, r10[1].tid);
  EXPECT_EQ(t5[0].rid, r10[1].rid);
  // Overwrite the ring until that shared slot is recycled: both views
  // must drop it together (no stale copy lingers in either index).
  for (uint32_t i = 0; i < 16; ++i) {
    recorder.OnEvent(MakeEvent(EventKind::kLockGrant, 7, 30));
  }
  EXPECT_TRUE(recorder.TailForTxn(5, 10).empty());
  EXPECT_TRUE(recorder.TailForResource(10, 10).empty());
  EXPECT_EQ(recorder.TailForTxn(7, 100).size(), 16u);
}

TEST(FlightRecorderTest, HotPathDoesNotAllocateAfterWarmUp) {
  obs::FlightRecorder recorder(32);
  Event event = MakeEvent(EventKind::kLockGrant, 1, 2);
  // Warm up: fill every slot once (slots hold empty detail strings).
  for (int i = 0; i < 64; ++i) recorder.OnEvent(event);
  // Steady state: recording a detail-free event is a plain field copy
  // into a preallocated slot.  Assigning an empty std::string over an
  // empty std::string does not allocate, so this loop is allocation-free;
  // the ASan/UBSan CI job would flag any regression that turned slot
  // writes into churn.  Functionally: capacity and contents stay stable.
  const size_t cap = recorder.capacity();
  for (int i = 0; i < 10000; ++i) recorder.OnEvent(event);
  EXPECT_EQ(recorder.capacity(), cap);
  EXPECT_EQ(recorder.recorded(), 10064u);
}

// -- watchdog --------------------------------------------------------------

TEST(WatchdogTest, FlagsSpanAgeStarvationOnce) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  obs::WatchdogOptions options;
  options.starvation_age = 10;
  options.check_interval = 1;
  options.convoy_depth = 99;  // keep convoys out of this test
  obs::Watchdog watchdog(&bus, options);
  bus.Subscribe(&watchdog);
  bus.Subscribe(&sink);

  Event block = MakeEvent(EventKind::kLockBlock, 7, 3);
  block.span = 42;
  bus.set_time(0);
  bus.Emit(block);
  EXPECT_EQ(watchdog.open_spans(), 1u);

  bus.set_time(5);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 1));  // age 5 < 10: quiet
  EXPECT_EQ(watchdog.starvation_alerts(), 0u);

  bus.set_time(12);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 2));  // age 12 >= 10: alert
  EXPECT_EQ(watchdog.starvation_alerts(), 1u);
  const std::vector<Event> alerts = sink.Filter(EventKind::kStarvation);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].tid, 7u);
  EXPECT_EQ(alerts[0].rid, 3u);
  EXPECT_EQ(alerts[0].span, 42u);
  EXPECT_EQ(alerts[0].b, 1u);  // span-age starvation
  EXPECT_GE(alerts[0].a, 12u);

  bus.set_time(50);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 3));  // same span: no re-alert
  EXPECT_EQ(watchdog.starvation_alerts(), 1u);

  // Wakeup closes the span; no further alerts ever.
  Event wake = MakeEvent(EventKind::kLockWakeup, 7, 3);
  wake.span = 42;
  bus.Emit(wake);
  EXPECT_EQ(watchdog.open_spans(), 0u);
}

TEST(WatchdogTest, FlagsRepeatedVictimizationOnRestart) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  obs::WatchdogOptions options;
  options.starvation_restarts = 3;
  obs::Watchdog watchdog(&bus, options);
  bus.Subscribe(&watchdog);
  bus.Subscribe(&sink);

  Event restart = MakeEvent(EventKind::kTxnRestart, 5);
  restart.a = 2;  // below threshold
  bus.Emit(restart);
  EXPECT_EQ(watchdog.starvation_alerts(), 0u);
  restart.a = 3;  // at threshold
  bus.Emit(restart);
  EXPECT_EQ(watchdog.starvation_alerts(), 1u);
  const std::vector<Event> alerts = sink.Filter(EventKind::kStarvation);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].b, 2u);  // repeated victimization
  EXPECT_EQ(alerts[0].a, 3u);
}

TEST(WatchdogTest, FlagsConvoysTopKHottestFirst) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  obs::WatchdogOptions options;
  options.convoy_depth = 2;
  options.convoy_top_k = 1;  // only the hottest resource
  options.check_interval = 1;
  options.starvation_age = 1'000'000;
  obs::Watchdog watchdog(&bus, options);
  bus.Subscribe(&watchdog);
  bus.Subscribe(&sink);

  uint64_t span = 1;
  auto block_on = [&](uint32_t tid, uint32_t rid) {
    Event event = MakeEvent(EventKind::kLockBlock, tid, rid);
    event.span = span++;
    bus.Emit(event);
  };
  bus.set_time(1);
  block_on(1, 100);
  block_on(2, 100);  // R100 depth 2
  block_on(3, 200);
  bus.set_time(2);
  block_on(4, 200);
  bus.set_time(3);
  block_on(5, 200);  // R200 depth 3: the hottest
  const std::vector<Event> alerts = sink.Filter(EventKind::kConvoy);
  ASSERT_FALSE(alerts.empty());
  // top_k=1: only the hottest resource of each check is flagged, and
  // re-alerts fire only when the convoy grows.
  const Event& last = alerts.back();
  EXPECT_EQ(last.rid, 200u);
  EXPECT_EQ(last.a, 3u);
  EXPECT_EQ(last.b, 1u);  // rank 1
  for (const Event& alert : alerts) {
    EXPECT_EQ(alert.b, 1u);
  }
  EXPECT_EQ(watchdog.convoy_alerts(), alerts.size());
}

TEST(WatchdogTest, ReentrantAlertsKeepOneOrderedStream) {
  // The watchdog emits alerts from inside OnEvent; the bus defers them so
  // every sink sees one strictly increasing sequence.
  obs::EventBus bus;
  obs::CollectorSink sink;
  obs::WatchdogOptions options;
  options.starvation_age = 1;
  options.check_interval = 1;
  obs::Watchdog watchdog(&bus, options);
  bus.Subscribe(&sink);
  bus.Subscribe(&watchdog);  // subscribed after: alerts still reach sink
  Event block = MakeEvent(EventKind::kLockBlock, 1, 1);
  block.span = 1;
  bus.set_time(0);
  bus.Emit(block);
  bus.set_time(10);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 2));  // triggers the alert
  ASSERT_EQ(sink.Count(EventKind::kStarvation), 1u);
  uint64_t prev = 0;
  for (const Event& event : sink.events()) {
    EXPECT_GT(event.seq, prev);
    prev = event.seq;
  }
}

// -- cycle post-mortems ----------------------------------------------------

TEST(PostMortemTest, Example41Tdr2PostMortemNamesChainAndRationale) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  lock::LockManager manager;
  manager.set_event_bus(&bus);
  core::BuildExample41(manager);
  core::CostTable costs;
  core::DetectorOptions options;
  options.event_bus = &bus;
  core::PeriodicDetector detector(options);
  core::ResolutionReport report = detector.RunPass(manager, costs);

  ASSERT_GT(report.cycles_detected, 0u);
  ASSERT_EQ(report.post_mortems.size(), report.cycles_detected);
  ASSERT_EQ(sink.Count(EventKind::kCyclePostMortem), report.cycles_detected);

  // Example 4.1 resolves everything by TDR-2 (repositioning on R2).
  bool saw_tdr2 = false;
  for (const core::CyclePostMortem& pm : report.post_mortems) {
    EXPECT_FALSE(pm.members.empty());
    EXPECT_FALSE(pm.rationale.empty());
    for (const core::PostMortemMember& member : pm.members) {
      if (member.blocked_on.has_value()) {
        EXPECT_GT(member.wait_span, 0u);
      }
    }
    if (pm.rule == core::VictimKind::kReposition) {
      saw_tdr2 = true;
      EXPECT_GT(pm.resource, 0u);
      EXPECT_NE(pm.rationale.find("reposition"), std::string::npos)
          << pm.rationale;
      EXPECT_FALSE(pm.queue_snapshots.empty());
      const std::string text = pm.ToString();
      EXPECT_NE(text.find("TDR-2"), std::string::npos) << text;
      EXPECT_NE(text.find("wait chain"), std::string::npos) << text;
    }
  }
  EXPECT_TRUE(saw_tdr2);

  // Each emitted event mirrors its post-mortem's summary line.
  for (const Event& event : sink.Filter(EventKind::kCyclePostMortem)) {
    EXPECT_FALSE(event.detail.empty());
    EXPECT_NE(event.detail.find("chain"), std::string::npos) << event.detail;
  }
  // The report's byte-for-byte rendering is unchanged by post-mortems
  // (differential tests depend on this).
  EXPECT_EQ(report.ToString().find("post-mortem"), std::string::npos);
}

TEST(PostMortemTest, CollectedWithoutABusWhenOptedIn) {
  lock::LockManager manager;
  core::BuildExample51(manager);
  core::CostTable costs;
  core::DetectorOptions options;
  options.collect_post_mortems = true;
  core::PeriodicDetector detector(options);
  core::ResolutionReport report = detector.RunPass(manager, costs);
  ASSERT_GT(report.cycles_detected, 0u);
  EXPECT_EQ(report.post_mortems.size(), report.cycles_detected);

  // Default options without a bus: no post-mortems assembled.
  lock::LockManager manager2;
  core::BuildExample51(manager2);
  core::CostTable costs2;
  core::PeriodicDetector plain{core::DetectorOptions{}};
  core::ResolutionReport report2 = plain.RunPass(manager2, costs2);
  EXPECT_GT(report2.cycles_detected, 0u);
  EXPECT_TRUE(report2.post_mortems.empty());
}

TEST(PostMortemTest, ReplPostmortemCommandPrintsForensics) {
  core::ScriptRunner runner;
  std::string out;
  ASSERT_TRUE(runner
                  .ExecuteScript("acquire 1 1 X\n"
                                 "acquire 2 2 X\n"
                                 "acquire 1 2 X\n"
                                 "acquire 2 1 X\n"
                                 "detect\n"
                                 "postmortem\n",
                                 &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("post-mortem"), std::string::npos) << out;
  EXPECT_NE(out.find("wait chain"), std::string::npos) << out;
  // Before any detect the command fails cleanly.
  core::ScriptRunner fresh;
  std::string unused;
  EXPECT_FALSE(fresh.ExecuteLine("postmortem", &unused).ok());
}

// -- JSONL write-error surfacing -------------------------------------------

TEST(JsonlWriteErrorTest, DiskFullIsCountedNotFatal) {
  // /dev/full accepts the open but fails every flush with ENOSPC.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  Result<std::unique_ptr<obs::JsonlSink>> sink =
      obs::JsonlSink::Open("/dev/full");
  ASSERT_TRUE(sink.ok());
  Event event;
  event.kind = EventKind::kTxnBegin;
  // Write more than one stdio buffer's worth so the failure surfaces
  // through fputs/fflush regardless of buffering.
  for (int i = 0; i < 10000; ++i) (*sink)->OnEvent(event);
  (*sink)->Flush();
  EXPECT_GT((*sink)->write_errors(), 0u);
  EXPECT_EQ((*sink)->lines_written(), 10000u);
}

TEST(JsonlWriteErrorTest, SimulatorMirrorsWriteErrorsIntoMetrics) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  sim::SimConfig config;
  config.workload.seed = 5;
  config.workload.num_transactions = 30;
  config.workload.concurrency = 4;
  config.workload.num_resources = 6;
  sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  ASSERT_TRUE(sim.StreamEventsTo("/dev/full").ok());
  sim::SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.committed, 30u);  // the run itself is unaffected
  EXPECT_GT(metrics.trace_write_errors, 0u);
  EXPECT_NE(metrics.ToString().find("trace_write_errors="),
            std::string::npos);
}

TEST(JsonlWriteErrorTest, OpenFailureIsAStatusNotACrash) {
  EXPECT_FALSE(obs::JsonlSink::Open("/nonexistent-dir/x.jsonl").ok());
  sim::SimConfig config;
  sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  EXPECT_FALSE(sim.StreamEventsTo("/nonexistent-dir/x.jsonl").ok());
}

}  // namespace
}  // namespace twbg
