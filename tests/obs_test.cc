// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Event bus, sink and observer unit tests, including the ordering
// guarantee for events emitted by one detection pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "core/cost_table.h"
#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/observer.h"
#include "obs/sinks.h"

namespace twbg::obs {
namespace {

Event MakeEvent(EventKind kind, lock::TransactionId tid = 0) {
  Event event;
  event.kind = kind;
  event.tid = tid;
  return event;
}

TEST(EventBusTest, InactiveWithoutSinks) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  EXPECT_FALSE(Enabled(&bus));
  EXPECT_FALSE(Enabled(nullptr));
  CollectorSink sink;
  bus.Subscribe(&sink);
  EXPECT_TRUE(bus.active());
  EXPECT_TRUE(Enabled(&bus));
  bus.Unsubscribe(&sink);
  EXPECT_FALSE(bus.active());
}

TEST(EventBusTest, SubscribeIsIdempotentAndNullSafe) {
  EventBus bus;
  CollectorSink sink;
  bus.Subscribe(nullptr);
  bus.Subscribe(&sink);
  bus.Subscribe(&sink);
  EXPECT_EQ(bus.num_sinks(), 1u);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 1));
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(EventBusTest, StampsMonotoneSequenceAndTime) {
  EventBus bus;
  CollectorSink sink;
  bus.Subscribe(&sink);
  bus.set_time(7);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 1));
  bus.set_time(9);
  bus.Emit(MakeEvent(EventKind::kTxnCommit, 1));
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].seq, 1u);
  EXPECT_EQ(sink.events()[1].seq, 2u);
  EXPECT_EQ(sink.events()[0].time, 7u);
  EXPECT_EQ(sink.events()[1].time, 9u);
  EXPECT_EQ(bus.emitted(), 2u);
}

TEST(EventBusTest, AllSinksSeeTheSameOrder) {
  EventBus bus;
  CollectorSink first;
  CollectorSink second;
  bus.Subscribe(&first);
  bus.Subscribe(&second);
  for (int i = 0; i < 5; ++i) {
    bus.Emit(MakeEvent(EventKind::kLockGrant, static_cast<uint32_t>(i + 1)));
  }
  ASSERT_EQ(first.events().size(), 5u);
  ASSERT_EQ(second.events().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(first.events()[i].seq, second.events()[i].seq);
    EXPECT_EQ(first.events()[i].tid, second.events()[i].tid);
  }
}

TEST(CollectorSinkTest, BoundedRingDropsOldest) {
  EventBus bus;
  CollectorSink sink(/*capacity=*/2);
  bus.Subscribe(&sink);
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 1));
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 2));
  bus.Emit(MakeEvent(EventKind::kTxnBegin, 3));
  EXPECT_EQ(sink.dropped(), 1u);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].tid, 2u);
  EXPECT_EQ(sink.events()[1].tid, 3u);
  sink.Clear();
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(CollectorSinkTest, FilterAndCount) {
  EventBus bus;
  CollectorSink sink;
  bus.Subscribe(&sink);
  bus.Emit(MakeEvent(EventKind::kLockGrant, 1));
  bus.Emit(MakeEvent(EventKind::kLockBlock, 2));
  bus.Emit(MakeEvent(EventKind::kLockGrant, 3));
  EXPECT_EQ(sink.Count(EventKind::kLockGrant), 2u);
  EXPECT_EQ(sink.Count(EventKind::kLockBlock), 1u);
  EXPECT_EQ(sink.Count(EventKind::kTxnAbort), 0u);
  std::vector<Event> grants = sink.Filter(EventKind::kLockGrant);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].tid, 1u);
  EXPECT_EQ(grants[1].tid, 3u);
}

TEST(EventTest, ToJsonHasStableSchema) {
  Event event;
  event.seq = 3;
  event.time = 10;
  event.kind = EventKind::kLockBlock;
  event.tid = 4;
  event.rid = 9;
  event.mode = lock::LockMode::kSIX;
  event.a = 2;
  event.span = 77;
  event.value = 1.5;
  event.detail = "chain T4 -> \"T9\"\n\\end";
  const std::string json = ToJson(event);
  EXPECT_NE(json.find("\"seq\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"time\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"lock_block\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rid\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\":\"SIX\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":77"), std::string::npos) << json;
  // Free-form detail is escaped: quotes, backslashes and the newline all
  // stay on one line.
  EXPECT_NE(json.find("\"detail\":\"chain T4 -> \\\"T9\\\"\\n\\\\end\""),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(EventTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(EventTest, EveryKindHasAName) {
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    const std::string_view name = ToString(static_cast<EventKind>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
  }
}

// One periodic pass over Example 5.1: the pass brackets its events with
// kPassStart/kPassEnd, Step 1 precedes Step 2, at least one cycle is
// resolved, and sequence numbers are strictly increasing.
TEST(JsonlSinkRotationTest, CapTruncatesKeepingTheTail) {
  const std::string path = ::testing::TempDir() + "twbg_rotate_test.jsonl";
  constexpr uint64_t kCap = 512;
  uint64_t written = 0;
  uint64_t rotations = 0;
  uint64_t dropped = 0;
  {
    Result<std::unique_ptr<JsonlSink>> sink = JsonlSink::Open(path, kCap);
    ASSERT_TRUE(sink.ok());
    for (lock::TransactionId tid = 1; tid <= 60; ++tid) {
      (*sink)->OnEvent(MakeEvent(EventKind::kLockGrant, tid));
    }
    (*sink)->Flush();
    written = (*sink)->lines_written();
    rotations = (*sink)->rotations();
    dropped = (*sink)->dropped_on_rotate();
    EXPECT_EQ(written, 60u);
    EXPECT_GT(rotations, 0u);
    EXPECT_EQ((*sink)->write_errors(), 0u);
  }
  // The surviving file is the tail of the stream: bounded by the cap,
  // ending with the newest event, holding exactly written - dropped lines.
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  for (int c; (c = std::fgetc(file)) != EOF;) {
    content.push_back(static_cast<char>(c));
  }
  std::fclose(file);
  EXPECT_LE(content.size(), kCap);
  EXPECT_NE(content.find("\"tid\":60"), std::string::npos);
  EXPECT_EQ(content.find("\"tid\":1,"), std::string::npos);  // rotated away
  const size_t lines =
      static_cast<size_t>(std::count(content.begin(), content.end(), '\n'));
  EXPECT_EQ(lines, written - dropped);
  std::remove(path.c_str());
}

TEST(JsonlSinkRotationTest, OversizedLineStillWrites) {
  const std::string path = ::testing::TempDir() + "twbg_rotate_tiny.jsonl";
  // A cap smaller than any single line: the cap bounds the file between
  // lines, never splits one, so each line lands whole and evicts its
  // predecessor.
  Result<std::unique_ptr<JsonlSink>> sink = JsonlSink::Open(path, 16);
  ASSERT_TRUE(sink.ok());
  for (lock::TransactionId tid = 1; tid <= 5; ++tid) {
    (*sink)->OnEvent(MakeEvent(EventKind::kLockGrant, tid));
  }
  (*sink)->Flush();
  EXPECT_EQ((*sink)->lines_written(), 5u);
  EXPECT_EQ((*sink)->rotations(), 4u);
  EXPECT_EQ((*sink)->dropped_on_rotate(), 4u);
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  for (int c; (c = std::fgetc(file)) != EOF;) {
    content.push_back(static_cast<char>(c));
  }
  std::fclose(file);
  EXPECT_NE(content.find("\"tid\":5"), std::string::npos);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 1);
  std::remove(path.c_str());
}

TEST(JsonlSinkRotationTest, UnboundedSinkNeverRotates) {
  const std::string path = ::testing::TempDir() + "twbg_rotate_off.jsonl";
  Result<std::unique_ptr<JsonlSink>> sink = JsonlSink::Open(path);
  ASSERT_TRUE(sink.ok());
  for (lock::TransactionId tid = 1; tid <= 100; ++tid) {
    (*sink)->OnEvent(MakeEvent(EventKind::kLockGrant, tid));
  }
  EXPECT_EQ((*sink)->rotations(), 0u);
  EXPECT_EQ((*sink)->dropped_on_rotate(), 0u);
  std::remove(path.c_str());
}

TEST(PassOrderingTest, EventsOfOnePassArriveInEmissionOrder) {
  EventBus bus;
  CollectorSink sink;
  bus.Subscribe(&sink);

  lock::LockManager manager;
  core::BuildExample51(manager);  // pre-bus: only the pass is recorded
  core::CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);
  core::DetectorOptions options;
  options.event_bus = &bus;
  core::PeriodicDetector detector(options);
  manager.set_event_bus(&bus);
  core::ResolutionReport report = detector.RunPass(manager, costs);
  EXPECT_GT(report.cycles_detected, 0u);

  const auto& events = sink.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, EventKind::kPassStart);
  EXPECT_EQ(events.front().a, 1u);  // periodic
  EXPECT_EQ(events.back().kind, EventKind::kPassEnd);
  EXPECT_EQ(events.back().a, report.cycles_detected);
  EXPECT_EQ(events.back().b, report.aborted.size());

  size_t step1 = 0, step2 = 0, resolved = 0;
  uint64_t prev_seq = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, prev_seq);  // strictly increasing
    prev_seq = events[i].seq;
    if (events[i].kind == EventKind::kStep1) step1 = i;
    if (events[i].kind == EventKind::kStep2) step2 = i;
    if (events[i].kind == EventKind::kCycleResolved) ++resolved;
  }
  EXPECT_GT(step1, 0u);
  EXPECT_GT(step2, step1);
  EXPECT_EQ(resolved, report.cycles_detected);
}

TEST(LatencyObserverTest, AggregatesPassAndLockEvents) {
  EventBus bus;
  LatencyObserver observer;
  bus.Subscribe(&observer);

  lock::LockManager manager;
  manager.set_event_bus(&bus);
  core::BuildExample51(manager);
  core::CostTable costs;
  core::DetectorOptions options;
  options.event_bus = &bus;
  core::PeriodicDetector detector(options);
  detector.RunPass(manager, costs);

  EXPECT_GT(observer.total(), 0u);
  EXPECT_GT(observer.Count(EventKind::kLockBlock), 0u);
  EXPECT_EQ(observer.Count(EventKind::kPassEnd), 1u);
  EXPECT_EQ(observer.queue_depth().count(),
            observer.Count(EventKind::kLockBlock));
  EXPECT_EQ(observer.pass_ns().count(), 1u);
  EXPECT_EQ(observer.step1_ns().count(), 1u);
  EXPECT_EQ(observer.step2_ns().count(), 1u);
  EXPECT_GT(observer.cycle_len().count(), 0u);
  EXPECT_GE(observer.cycle_len().min(), 2u);  // a cycle has >= 2 members

  const std::string report = observer.Report();
  EXPECT_NE(report.find("lock_block"), std::string::npos) << report;
  EXPECT_NE(report.find("pass (ns)"), std::string::npos) << report;

  observer.Reset();
  EXPECT_EQ(observer.total(), 0u);
  EXPECT_EQ(observer.pass_ns().count(), 0u);
}

TEST(PrometheusExportTest, TextContainsCountersAndHistograms) {
  LatencyObserver observer;
  Event block = MakeEvent(EventKind::kLockBlock, 2);
  block.a = 3;
  observer.OnEvent(block);
  Event wait = MakeEvent(EventKind::kWaitEnd, 2);
  wait.value = 12.0;
  observer.OnEvent(wait);

  const std::string text = ToPrometheusText(observer);
  EXPECT_NE(text.find("twbg_events_total{kind=\"lock_block\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE twbg_wait_time_ticks histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("twbg_wait_time_ticks_count 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("twbg_queue_depth_sum 3"), std::string::npos) << text;
  // Custom prefix is honoured.
  EXPECT_NE(ToPrometheusText(observer, "park92").find("park92_events_total"),
            std::string::npos);

  const std::string path = ::testing::TempDir() + "twbg_prom_test.txt";
  ASSERT_TRUE(WritePrometheusFile(observer, path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(WritePrometheusFile(observer, "/nonexistent-dir/x.txt").ok());
}

}  // namespace
}  // namespace twbg::obs
