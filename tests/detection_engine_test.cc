// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// White-box tests of the Step 2 walk mechanics (§5): ancestor/current
// bookkeeping, skip semantics, resume-at-w after a resolution, victim
// application, and Step 3 ordering effects.

#include "core/detection_engine.h"

#include <gtest/gtest.h>

#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "core/tst.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

TEST(DetectionEngineTest, EmptyTstWalksNothing) {
  lock::LockManager lm;
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  WalkOutcome outcome = RunWalk(tst, {}, lm, costs, {});
  EXPECT_EQ(outcome.cycles, 0u);
  EXPECT_EQ(outcome.steps, 0u);
}

TEST(DetectionEngineTest, UnknownRootsAreSkipped) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  WalkOutcome outcome = RunWalk(tst, {99, 1}, lm, costs, {});
  EXPECT_EQ(outcome.cycles, 0u);
}

TEST(DetectionEngineTest, WalkLeavesAncestorsClean) {
  // After any complete walk every ancestor must be back to 0 (the paper's
  // loop relies on this across outer iterations).
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  RunWalk(tst, tst.Transactions(), lm, costs, {});
  for (lock::TransactionId tid : tst.Transactions()) {
    EXPECT_EQ(tst.At(tid).ancestor, 0) << "T" << tid;
  }
}

TEST(DetectionEngineTest, VictimCurrentIsNilAfterWalk) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  costs.Set(1, 9.0);
  costs.Set(2, 1.0);
  WalkOutcome outcome = RunWalk(tst, tst.Transactions(), lm, costs, {});
  ASSERT_EQ(outcome.abortion_list,
            (std::vector<lock::TransactionId>{2}));
  EXPECT_TRUE(tst.At(2).CurrentIsNil());
}

TEST(DetectionEngineTest, RootInsideCycleDetectsIt) {
  // Roots are tried in the given order; starting at each vertex of the
  // cycle must find it.
  for (lock::TransactionId root : {1u, 2u}) {
    lock::LockManager lm;
    ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
    ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
    ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
    ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
    Tst tst = Tst::Build(lm.table());
    CostTable costs;
    WalkOutcome outcome = RunWalk(tst, {root}, lm, costs, {});
    EXPECT_EQ(outcome.cycles, 1u) << "root " << root;
  }
}

TEST(DetectionEngineTest, Tdr2DuringWalkRepositionsImmediately) {
  // The queue mutation of a TDR-2 happens during Step 2 (the paper's
  // victim-selection), before ApplyResolution runs.
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());
  CostTable costs;  // uniform: TDR-2 (cost 0.5) wins
  WalkOutcome outcome = RunWalk(tst, tst.Transactions(), lm, costs, {});
  ASSERT_EQ(outcome.change_list, (std::vector<lock::ResourceId>{kR2}));
  const lock::ResourceState* r2 = lm.table().Find(kR2);
  ASSERT_NE(r2, nullptr);
  // Repositioned but not yet rescheduled: T9 leads the queue, ungran ted.
  ASSERT_EQ(r2->queue().size(), 4u);
  EXPECT_EQ(r2->queue()[0].tid, 9u);
  EXPECT_EQ(r2->queue()[1].tid, 3u);
  EXPECT_EQ(r2->queue()[2].tid, 8u);
  // ST costs were bumped during the walk.
  EXPECT_DOUBLE_EQ(costs.Get(8), 2.0);
  // Step 3 performs the grant.
  ResolutionReport report =
      ApplyResolution(std::move(outcome), lm, costs, {});
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{9}));
}

TEST(DetectionEngineTest, AvMembersAreNiledByTdr2) {
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  RunWalk(tst, tst.Transactions(), lm, costs, {});
  // AV = {T9, T3}: both pruned from further search (Lemma 4.1).
  EXPECT_TRUE(tst.At(9).CurrentIsNil());
  EXPECT_TRUE(tst.At(3).CurrentIsNil());
}

TEST(DetectionEngineTest, CostAscendingOrderChangesSparing) {
  // Example 5.1 victims are T3 (cost 1) then T2 (cost 4).  Cost-ascending
  // processes T3 first — no sparing; cost-descending processes T2 first —
  // T3 spared.  Both end deadlock-free.
  for (AbortOrder order :
       {AbortOrder::kCostAscending, AbortOrder::kCostDescending}) {
    lock::LockManager lm;
    BuildExample51(lm);
    CostTable costs;
    costs.Set(1, 6.0);
    costs.Set(2, 4.0);
    costs.Set(3, 1.0);
    Tst tst = Tst::Build(lm.table());
    DetectorOptions options;
    options.abort_order = order;
    WalkOutcome walk = RunWalk(tst, tst.Transactions(), lm, costs, options);
    ResolutionReport report =
        ApplyResolution(std::move(walk), lm, costs, options);
    if (order == AbortOrder::kCostDescending) {
      EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{2}));
      EXPECT_EQ(report.spared, (std::vector<lock::TransactionId>{3}));
    } else {
      EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{3, 2}));
      EXPECT_TRUE(report.spared.empty());
    }
    EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
  }
}

TEST(DetectionEngineTest, StCostBumpPolicyIsConfigurable) {
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());
  CostTable costs;  // uniform costs keep the TDR-2 candidate cheapest
  DetectorOptions options;
  options.st_cost_multiplier = 1.0;
  options.st_cost_increment = 10.0;
  RunWalk(tst, tst.Transactions(), lm, costs, options);
  EXPECT_DOUBLE_EQ(costs.Get(8), 11.0);  // 1 * 1 + 10
}

TEST(DetectionEngineTest, WalkStepsAreCounted) {
  lock::LockManager lm;
  BuildExample51(lm);
  Tst tst = Tst::Build(lm.table());
  CostTable costs;
  WalkOutcome outcome = RunWalk(tst, tst.Transactions(), lm, costs, {});
  EXPECT_GT(outcome.steps, tst.size());  // at least one step per vertex
}

}  // namespace
}  // namespace twbg::core
