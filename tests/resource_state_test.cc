// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the per-resource scheduling policy of §3: FIFO queueing,
// conversion grants/blocks, the UPR positioning rules, total-mode
// maintenance, release-time rescheduling and the TDR-2 AV/ST split.

#include "lock/resource_state.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace twbg::lock {
namespace {

using enum LockMode;

RequestOutcome MustRequest(ResourceState& r, TransactionId tid,
                           LockMode mode) {
  Result<RequestOutcome> outcome = r.Request(tid, mode);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(r.CheckInvariants().ok()) << r.CheckInvariants().ToString();
  return *outcome;
}

std::vector<TransactionId> HolderIds(const ResourceState& r) {
  std::vector<TransactionId> out;
  for (const HolderEntry& h : r.holders()) out.push_back(h.tid);
  return out;
}

std::vector<TransactionId> QueueIds(const ResourceState& r) {
  std::vector<TransactionId> out;
  for (const QueueEntry& q : r.queue()) out.push_back(q.tid);
  return out;
}

TEST(ResourceStateTest, FirstRequestGranted) {
  ResourceState r(1);
  EXPECT_EQ(MustRequest(r, 1, kX), RequestOutcome::kGranted);
  EXPECT_EQ(r.total_mode(), kX);
  EXPECT_EQ(r.holders().size(), 1u);
  EXPECT_TRUE(r.queue().empty());
}

TEST(ResourceStateTest, CompatibleRequestsShare) {
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIX);
  EXPECT_EQ(MustRequest(r, 3, kIX), RequestOutcome::kGranted);
  EXPECT_EQ(r.total_mode(), kIX);
  EXPECT_EQ(r.holders().size(), 3u);
}

TEST(ResourceStateTest, ConflictingRequestQueues) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  EXPECT_EQ(MustRequest(r, 2, kX), RequestOutcome::kBlocked);
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{2}));
  EXPECT_EQ(r.total_mode(), kS);  // queue members do not contribute to tm
}

TEST(ResourceStateTest, FifoBlocksCompatibleRequestBehindIncompatible) {
  // §3: "If the queue is not empty, then the request is not granted" even
  // when the mode would be compatible with tm.
  ResourceState r(1);
  MustRequest(r, 1, kS);
  MustRequest(r, 2, kX);  // queues
  EXPECT_EQ(MustRequest(r, 3, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{2, 3}));
}

TEST(ResourceStateTest, RepeatRequestIsAlreadyHeld) {
  ResourceState r(1);
  MustRequest(r, 1, kSIX);
  EXPECT_EQ(MustRequest(r, 1, kIS), RequestOutcome::kAlreadyHeld);
  EXPECT_EQ(MustRequest(r, 1, kS), RequestOutcome::kAlreadyHeld);
  EXPECT_EQ(MustRequest(r, 1, kSIX), RequestOutcome::kAlreadyHeld);
  EXPECT_EQ(r.total_mode(), kSIX);
}

TEST(ResourceStateTest, ConversionGrantedWhenCompatibleWithOtherGrants) {
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIS);
  EXPECT_EQ(MustRequest(r, 1, kIX), RequestOutcome::kGranted);
  EXPECT_EQ(r.FindHolder(1)->granted, kIX);
  EXPECT_EQ(r.total_mode(), kIX);
}

TEST(ResourceStateTest, ConversionBlockedRaisesTotalMode) {
  // Paper's Example 3.1: T1 holds IS, T2 holds IX; T1 re-requests S.
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIX);
  EXPECT_EQ(r.total_mode(), kIX);
  EXPECT_EQ(MustRequest(r, 1, kS), RequestOutcome::kBlocked);
  const HolderEntry* h = r.FindHolder(1);
  EXPECT_EQ(h->granted, kIS);
  EXPECT_EQ(h->blocked, kS);
  // tm folds the blocked mode in: Conv(IX, S) = SIX.
  EXPECT_EQ(r.total_mode(), kSIX);
}

TEST(ResourceStateTest, BlockedConverterLeadsTheHolderList) {
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIX);
  MustRequest(r, 1, kS);  // blocks
  EXPECT_EQ(HolderIds(r), (std::vector<TransactionId>{1, 2}));
  EXPECT_TRUE(r.holders()[0].IsBlocked());
  EXPECT_FALSE(r.holders()[1].IsBlocked());
}

TEST(ResourceStateTest, Upr2OrdersExample41Upgraders) {
  // Example 4.1 build order: T2 (IS->S) blocks first, then T1 (IX->SIX);
  // UPR-2 places T1 before T2.
  ResourceState r(1);
  MustRequest(r, 1, kIX);
  MustRequest(r, 2, kIS);
  MustRequest(r, 3, kIX);
  MustRequest(r, 4, kIS);
  EXPECT_EQ(MustRequest(r, 2, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(MustRequest(r, 1, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(HolderIds(r), (std::vector<TransactionId>{1, 2, 3, 4}));
  EXPECT_EQ(r.FindHolder(1)->blocked, kSIX);  // Conv(IX, S)
  EXPECT_EQ(r.FindHolder(2)->blocked, kS);
  EXPECT_EQ(r.total_mode(), kSIX);
}

TEST(ResourceStateTest, UprOrderIsArrivalOrderIndependent) {
  // The reverse build order (T1 blocks first, then T2 lands by UPR-3)
  // yields the same final order — the positioning is canonical.
  ResourceState r(1);
  MustRequest(r, 1, kIX);
  MustRequest(r, 2, kIS);
  MustRequest(r, 3, kIX);
  MustRequest(r, 4, kIS);
  EXPECT_EQ(MustRequest(r, 1, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(MustRequest(r, 2, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(HolderIds(r), (std::vector<TransactionId>{1, 2, 3, 4}));
}

TEST(ResourceStateTest, Upr1GroupsCompatibleUpgraders) {
  // Two IS->S upgraders blocked by an IX holder have compatible blocked
  // modes; UPR-1 inserts the second right before the first.
  ResourceState r(1);
  MustRequest(r, 1, kIX);
  MustRequest(r, 2, kIS);
  MustRequest(r, 3, kIS);
  EXPECT_EQ(MustRequest(r, 2, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(MustRequest(r, 3, kS), RequestOutcome::kBlocked);
  EXPECT_EQ(HolderIds(r), (std::vector<TransactionId>{3, 2, 1}));
}

TEST(ResourceStateTest, Upr3ConversionDeadlockWithinHolderList) {
  // Observation 3.1(3): two IS->X upgraders block each other — a deadlock
  // entirely inside one holder list.
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIS);
  EXPECT_EQ(MustRequest(r, 1, kX), RequestOutcome::kBlocked);
  EXPECT_EQ(MustRequest(r, 2, kX), RequestOutcome::kBlocked);
  EXPECT_EQ(HolderIds(r), (std::vector<TransactionId>{1, 2}));
  EXPECT_TRUE(r.holders()[0].IsBlocked());
  EXPECT_TRUE(r.holders()[1].IsBlocked());
}

TEST(ResourceStateTest, RemoveHolderGrantsConversionsThenQueue) {
  // T1 holds IX blocking T2's IS->S upgrade and queued T3 (S).  When T1
  // leaves, the upgrade is granted first, then the queue is drained while
  // compatible.
  ResourceState r(1);
  MustRequest(r, 1, kIX);
  MustRequest(r, 2, kIS);
  MustRequest(r, 2, kS);  // blocked upgrade
  MustRequest(r, 3, kS);  // queued (tm = SIX)
  std::vector<TransactionId> granted = r.Remove(1);
  EXPECT_EQ(granted, (std::vector<TransactionId>{2, 3}));
  EXPECT_TRUE(r.CheckInvariants().ok());
  EXPECT_EQ(r.FindHolder(2)->granted, kS);
  EXPECT_EQ(r.FindHolder(2)->blocked, kNL);
  EXPECT_EQ(r.FindHolder(3)->granted, kS);
  EXPECT_EQ(r.total_mode(), kS);
}

TEST(ResourceStateTest, RemoveGrantsCompatibleUpgraderChain) {
  ResourceState r(1);
  MustRequest(r, 1, kS);   // blocker
  MustRequest(r, 2, kIS);
  MustRequest(r, 3, kIS);
  MustRequest(r, 2, kIX);  // blocked (IX vs S)
  MustRequest(r, 3, kIX);  // blocked, UPR-1 puts T3 first
  std::vector<TransactionId> granted = r.Remove(1);
  EXPECT_EQ(granted, (std::vector<TransactionId>{3, 2}));
  EXPECT_EQ(r.total_mode(), kIX);
  for (const HolderEntry& h : r.holders()) EXPECT_FALSE(h.IsBlocked());
}

TEST(ResourceStateTest, QueueDrainStopsAtFirstConflict) {
  ResourceState r(1);
  MustRequest(r, 1, kX);
  MustRequest(r, 2, kS);  // queued
  MustRequest(r, 3, kS);  // queued
  MustRequest(r, 4, kX);  // queued
  MustRequest(r, 5, kS);  // queued
  std::vector<TransactionId> granted = r.Remove(1);
  // S, S admitted; X conflicts with tm = S; T5 stays behind FIFO.
  EXPECT_EQ(granted, (std::vector<TransactionId>{2, 3}));
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{4, 5}));
}

TEST(ResourceStateTest, RemoveQueueFrontUnblocksSuccessor) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  MustRequest(r, 2, kX);  // queued front
  MustRequest(r, 3, kS);  // queued behind, compatible with tm
  std::vector<TransactionId> granted = r.Remove(2);  // abort the front
  EXPECT_EQ(granted, (std::vector<TransactionId>{3}));
  EXPECT_TRUE(r.queue().empty());
}

TEST(ResourceStateTest, RemoveMiddleQueueMemberGrantsNothing) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  MustRequest(r, 2, kX);
  MustRequest(r, 3, kS);
  MustRequest(r, 4, kX);
  EXPECT_TRUE(r.Remove(3).empty());
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{2, 4}));
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(ResourceStateTest, RemoveLastHolderFreesResource) {
  ResourceState r(1);
  MustRequest(r, 1, kX);
  EXPECT_TRUE(r.Remove(1).empty());
  EXPECT_TRUE(r.IsFree());
  EXPECT_EQ(r.total_mode(), kNL);
}

TEST(ResourceStateTest, RemoveUnknownTransactionIsNoop) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  EXPECT_TRUE(r.Remove(99).empty());
  EXPECT_EQ(r.holders().size(), 1u);
}

TEST(ResourceStateTest, RequestWhileBlockedFails) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  MustRequest(r, 3, kIS);  // granted alongside T1
  MustRequest(r, 2, kX);   // queued
  EXPECT_TRUE(r.Request(2, kS).status().IsFailedPrecondition());
  // Blocked converter too: T3's IS->X upgrade conflicts with T1's S.
  ASSERT_EQ(MustRequest(r, 3, kX), RequestOutcome::kBlocked);
  EXPECT_TRUE(r.Request(3, kS).status().IsFailedPrecondition());
}

TEST(ResourceStateTest, InvalidRequestsRejected) {
  ResourceState r(1);
  EXPECT_TRUE(r.Request(0, kS).status().IsInvalidArgument());
  EXPECT_TRUE(r.Request(1, kNL).status().IsInvalidArgument());
}

TEST(ResourceStateTest, ComputeAvStExample41R2) {
  // R2: Holder((T7,IS)) Queue((T8,X)(T9,IX)(T3,S)(T4,X)); junction T3.
  ResourceState r(2);
  MustRequest(r, 7, kIS);
  MustRequest(r, 8, kX);
  MustRequest(r, 9, kIX);
  MustRequest(r, 3, kS);
  MustRequest(r, 4, kX);
  Result<ResourceState::AvSt> split = r.ComputeAvSt(3);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->av.size(), 2u);
  EXPECT_EQ(split->av[0].tid, 9u);
  EXPECT_EQ(split->av[1].tid, 3u);
  ASSERT_EQ(split->st.size(), 1u);
  EXPECT_EQ(split->st[0].tid, 8u);
}

TEST(ResourceStateTest, ComputeAvStErrors) {
  ResourceState r(1);
  MustRequest(r, 1, kS);
  MustRequest(r, 2, kX);
  MustRequest(r, 3, kX);
  // Not in queue.
  EXPECT_TRUE(r.ComputeAvSt(1).status().IsNotFound());
  EXPECT_TRUE(r.ComputeAvSt(42).status().IsNotFound());
  // Junction's own mode conflicts with tm -> TDR-2 inapplicable.
  EXPECT_TRUE(r.ComputeAvSt(3).status().IsFailedPrecondition());
}

TEST(ResourceStateTest, ApplyTdr2RepositionsExample41R2) {
  ResourceState r(2);
  MustRequest(r, 7, kIS);
  MustRequest(r, 8, kX);
  MustRequest(r, 9, kIX);
  MustRequest(r, 3, kS);
  MustRequest(r, 4, kX);
  ASSERT_TRUE(r.ApplyTdr2(3).ok());
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{9, 3, 8, 4}));
  // Reschedule (the paper's Step 3 via change-list): T9 admitted, T3 not.
  std::vector<TransactionId> granted = r.Reschedule();
  EXPECT_EQ(granted, (std::vector<TransactionId>{9}));
  EXPECT_EQ(QueueIds(r), (std::vector<TransactionId>{3, 8, 4}));
  EXPECT_EQ(r.total_mode(), kIX);
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(ResourceStateTest, RescheduleAtRestIsIdempotent) {
  ResourceState r(1);
  MustRequest(r, 1, kIX);
  MustRequest(r, 2, kIS);
  MustRequest(r, 2, kS);
  MustRequest(r, 3, kS);
  EXPECT_TRUE(r.Reschedule().empty());
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(ResourceStateTest, ToStringMatchesPaperNotation) {
  ResourceState r(1);
  MustRequest(r, 1, kIS);
  MustRequest(r, 2, kIX);
  MustRequest(r, 1, kS);
  MustRequest(r, 3, kS);
  MustRequest(r, 4, kX);
  EXPECT_EQ(r.ToString(),
            "R1(SIX): Holder((T1, IS, S) (T2, IX, NL)) "
            "Queue((T3, S) (T4, X))");
}

// Randomized smoke: invariants hold after arbitrary request/remove
// interleavings.
TEST(ResourceStateTest, RandomizedInvariants) {
  common::Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    ResourceState r(1);
    for (int op = 0; op < 60; ++op) {
      TransactionId tid = static_cast<TransactionId>(rng.NextInRange(1, 8));
      if (rng.NextBernoulli(0.25)) {
        r.Remove(tid);
      } else {
        LockMode mode = kRealModes[rng.NextBelow(5)];
        // Ignore rejected requests (blocked transactions re-requesting).
        (void)r.Request(tid, mode);
      }
      Status invariants = r.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    }
  }
}

}  // namespace
}  // namespace twbg::lock
