// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The differential test of the LockClient stack: every checked-in
// scenario script (scenarios/*.twbg) runs once through InProcessClient
// and once through a live net::Server + net::TcpClient, and the two
// outputs must match byte for byte — the wire adds transport, never
// semantics.  Each run gets a fresh single-shard periodic service with
// no background detector so `detect` is entirely script-driven.

#include "txn/client_script.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "net/server.h"
#include "net/tcp_client.h"
#include "txn/concurrent_service.h"

#ifndef TWBG_SCENARIO_DIR
#error "TWBG_SCENARIO_DIR must be defined by the build"
#endif

namespace twbg::txn {
namespace {

std::vector<std::filesystem::path> ScenarioFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TWBG_SCENARIO_DIR)) {
    if (entry.path().extension() == ".twbg") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::unique_ptr<ConcurrentLockService> FreshService() {
  ConcurrentServiceOptions options;
  options.detection_mode = DetectionMode::kPeriodic;
  options.num_shards = 1;
  auto service = ConcurrentLockService::Create(options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

struct RunResult {
  Status status = Status::OK();
  std::string output;
};

RunResult RunInProcess(const std::string& script) {
  RunResult result;
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  EXPECT_TRUE(client.ok());
  ClientScriptRunner runner(client->get());
  result.status = runner.ExecuteScript(script, &result.output);
  return result;
}

RunResult RunOverTcp(const std::string& script) {
  RunResult result;
  auto service = FreshService();
  auto server = net::Server::Create({}, service.get());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  Status started = (*server)->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();

  net::ClientOptions client_options;
  client_options.port = (*server)->port();
  auto client = net::TcpClient::Create(client_options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  ClientScriptRunner runner(client->get());
  result.status = runner.ExecuteScript(script, &result.output);
  return result;
}

class ClientScriptDifferentialTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(ClientScriptDifferentialTest, TcpMatchesInProcessByteForByte) {
  const std::string script = ReadFile(GetParam());
  const RunResult in_process = RunInProcess(script);
  const RunResult over_tcp = RunOverTcp(script);

  // The scripts carry their own expect* assertions: both back ends must
  // pass them...
  EXPECT_TRUE(in_process.status.ok())
      << GetParam() << ": " << in_process.status.ToString()
      << "\n--- output ---\n"
      << in_process.output;
  EXPECT_TRUE(over_tcp.status.ok())
      << GetParam() << ": " << over_tcp.status.ToString()
      << "\n--- output ---\n"
      << over_tcp.output;
  // ...and produce identical resolution reports, tables and views.
  EXPECT_EQ(in_process.output, over_tcp.output) << GetParam();
}

std::string NameOf(const ::testing::TestParamInfo<std::filesystem::path>& p) {
  std::string stem = p.param.stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ClientScriptDifferentialTest,
                         ::testing::ValuesIn(ScenarioFiles()), NameOf);

// Runner-level semantics that no scenario file exercises.

TEST(ClientScriptRunnerTest, EchoAndComments) {
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());
  ClientScriptRunner runner(client->get(), {.echo = true});
  std::string out;
  ASSERT_TRUE(runner.ExecuteLine("  # a full-line comment", &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X  # trailing", &out).ok());
  EXPECT_EQ(out, "> acquire 1 1 X\nT1 <- X on R1: granted\n");
}

TEST(ClientScriptRunnerTest, UnknownCommandReportsLineNumber) {
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());
  ClientScriptRunner runner(client->get());
  std::string out;
  Status status = runner.ExecuteScript("acquire 1 1 X\nfrobnicate\n", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("line 2"), std::string::npos);
  EXPECT_NE(status.ToString().find("unknown command 'frobnicate'"),
            std::string::npos);
}

TEST(ClientScriptRunnerTest, ReleaseAndReuseOfScriptIds) {
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());
  ClientScriptRunner runner(client->get());
  std::string out;
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  ASSERT_TRUE(runner.ExecuteLine("release 1", &out).ok());
  EXPECT_NE(out.find("released T1\n"), std::string::npos);
  // The script id maps onto a fresh service transaction afterwards.
  out.clear();
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  EXPECT_EQ(out, "T1 <- X on R1: granted\n");
}

TEST(ClientScriptRunnerTest, ObsIsUnavailableThroughClients) {
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());
  ClientScriptRunner runner(client->get());
  std::string out;
  EXPECT_TRUE(runner.ExecuteLine("obs", &out).IsInvalidArgument());
}

TEST(ClientScriptRunnerTest, ResetAbortsLiveTransactions) {
  auto service = FreshService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());
  ClientScriptRunner runner(client->get());
  std::string out;
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  ASSERT_TRUE(runner.ExecuteLine("acquire 2 2 S", &out).ok());
  ASSERT_TRUE(runner.ExecuteLine("reset", &out).ok());
  EXPECT_EQ(service->live_transactions(), 0u);
}

}  // namespace
}  // namespace twbg::txn
