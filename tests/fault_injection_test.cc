// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Fault-injection differential suite.  The same seeded, schedule-
// addressable FaultPlans are injected into both hosts — the discrete-time
// simulator and the threaded sharded service — across hundreds of
// (schedule, fault plan, robustness config) combinations, and every run
// must converge to a quiescent, invariant-clean state with no leaked
// waiters.  Also covers the graceful-degradation ladder and the
// AcquireWithRetry client helper.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "obs/bus.h"
#include "obs/sinks.h"
#include "sim/simulator.h"
#include "txn/concurrent_service.h"
#include "txn/robustness/robustness.h"

namespace twbg {
namespace {

using lock::LockMode;
using lock::TransactionId;

// ---------------------------------------------------------------------
// Differential sweep, simulator host: 400 seeded combinations.
// ---------------------------------------------------------------------

TEST(FaultDifferentialTest, SimulatorConvergesUnderFaultPlans) {
  int runs = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    for (int variant = 0; variant < 4; ++variant) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " variant=" << variant);
      sim::SimConfig config;
      config.workload.seed = seed + 1;
      config.workload.num_transactions = 10;
      config.workload.concurrency = 4;
      config.workload.num_resources = 4;
      config.workload.zipf_theta = 0.9;
      config.workload.min_ops = 2;
      config.workload.max_ops = 5;
      config.detection_period = 5;
      config.max_ticks = 100'000;

      robustness::FaultPlanOptions fault_options;
      fault_options.num_faults = 4;
      fault_options.max_at = 120;
      fault_options.max_txn = 10;
      fault_options.max_shard = 1;  // the simulator is unsharded
      fault_options.max_duration = 3;
      Result<robustness::FaultPlan> plan =
          robustness::FaultPlan::Random(seed * 4 + variant, fault_options);
      ASSERT_TRUE(plan.ok());
      config.fault_plan = *plan;

      const char* strategy = "hwtwbg-periodic";
      switch (variant) {
        case 0:
          break;  // faults only; the detector is the sole resolver
        case 1:   // faults + lock-wait deadlines alongside the detector
          config.robustness.deadline.lock_wait = 6;
          config.robustness.deadline.abort_after = 3;
          break;
        case 2:  // + admission control and backpressure
          config.robustness.deadline.lock_wait = 6;
          config.robustness.deadline.abort_after = 3;
          config.robustness.admission.max_inflight_txns = 3;
          config.robustness.admission.queue_depth_watermark = 3;
          break;
        case 3:  // the deadline layer is the only resolver
          strategy = "none";
          config.detection_period = 0;
          config.robustness.deadline.lock_wait = 4;
          config.robustness.deadline.abort_after = 2;
          break;
      }

      Result<std::unique_ptr<sim::Simulator>> sim =
          sim::Simulator::Create(config, baselines::MakeStrategy(strategy));
      ASSERT_TRUE(sim.ok());
      sim::SimMetrics metrics = (*sim)->Run();

      // Quiescent convergence: every logical transaction committed.
      EXPECT_FALSE(metrics.timed_out);
      EXPECT_EQ(metrics.committed, config.workload.num_transactions);
      // Invariant-clean, no leaked waiters: all locks released, nothing
      // left blocked, nothing still registered.
      const lock::LockManager& lm = (*sim)->lock_manager();
      EXPECT_TRUE(lm.CheckInvariants(/*deep=*/true).ok());
      EXPECT_TRUE(lm.BlockedTransactions().empty());
      EXPECT_TRUE(lm.KnownTransactions().empty());
      // Resolution accounting stays disjoint.
      if (variant == 0) {
        EXPECT_EQ(metrics.deadline_expired_waits, 0u);
        EXPECT_EQ(metrics.deadline_aborts, 0u);
      }
      if (variant == 3) {
        EXPECT_EQ(metrics.deadlock_aborts, 0u);
      }
      ++runs;
    }
  }
  EXPECT_EQ(runs, 400);
}

// ---------------------------------------------------------------------
// Differential sweep, threaded service host: 100 seeded combinations.
// ---------------------------------------------------------------------

TEST(FaultDifferentialTest, ServiceConvergesUnderFaultPlans) {
  int runs = 0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    for (int variant = 0; variant < 4; ++variant) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " variant=" << variant);
      txn::ConcurrentServiceOptions options;
      options.num_shards = 1 + seed % 4;
      options.detection_mode = txn::DetectionMode::kPeriodic;
      options.detection_period = std::chrono::microseconds(300);
      options.robustness.deadline.lock_wait = 1'000;  // 1 ms
      options.robustness.deadline.abort_after = 2;
      if (variant >= 2) {
        options.robustness.admission.max_inflight_txns = 3;
        options.robustness.admission.queue_depth_watermark = 3;
      }
      size_t planned_faults = 0;
      if (variant % 2 == 1) {
        robustness::FaultPlanOptions fault_options;
        fault_options.num_faults = 3;
        fault_options.max_at = 6;  // per-txn operation index
        fault_options.max_txn = 12;
        fault_options.max_shard = static_cast<uint32_t>(options.num_shards);
        fault_options.max_duration = 200;  // microseconds
        Result<robustness::FaultPlan> plan =
            robustness::FaultPlan::Random(seed * 4 + variant, fault_options);
        ASSERT_TRUE(plan.ok());
        planned_faults = plan->faults.size();
        options.fault_plan = *plan;
      }
      Result<std::unique_ptr<txn::ConcurrentLockService>> created =
          txn::ConcurrentLockService::Create(options);
      ASSERT_TRUE(created.ok());
      txn::ConcurrentLockService& service = **created;

      robustness::RetryOptions retry;
      retry.backoff_base = 100;  // microseconds
      retry.backoff_cap = 400;
      retry.max_attempts = 3;

      auto worker = [&](uint64_t worker_id) {
        for (int t = 0; t < 3; ++t) {
          // Begin under admission control: shed Begins retry after a nap.
          Result<TransactionId> began = service.Begin();
          while (!began.ok()) {
            ASSERT_TRUE(began.status().IsResourceExhausted())
                << began.status().ToString();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            began = service.Begin();
          }
          const TransactionId tid = *began;
          bool alive = true;
          for (int op = 0; op < 2 && alive; ++op) {
            // Deterministic contended resource pick (4 resources).
            const lock::ResourceId rid = static_cast<lock::ResourceId>(
                1 + (seed + worker_id * 7 + static_cast<uint64_t>(t) * 3 +
                     static_cast<uint64_t>(op)) %
                        4);
            Status s = txn::AcquireWithRetry(service, tid, rid, LockMode::kX,
                                             retry, seed ^ (tid * 31));
            if (!s.ok()) {
              // Deadlock victim, injected crash, or retry exhaustion —
              // in every case the transaction is already aborted.
              ASSERT_TRUE(s.IsAborted() || s.IsDeadlineExceeded() ||
                          s.IsResourceExhausted())
                  << s.ToString();
              Result<txn::TxnState> state = service.State(tid);
              ASSERT_TRUE(state.ok());
              EXPECT_EQ(*state, txn::TxnState::kAborted);
              alive = false;
            }
          }
          if (alive) {
            EXPECT_TRUE(service.Commit(tid).ok());
          }
        }
      };
      std::thread w1(worker, 1);
      std::thread w2(worker, 2);
      std::thread w3(worker, 3);
      w1.join();
      w2.join();
      w3.join();

      // Quiescent: every transaction terminated by its worker; the table
      // must be invariant-clean with no leaked waiter in any shard.
      EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
      if (planned_faults != 0) {
        ASSERT_NE(service.fault_injector(), nullptr);
        EXPECT_EQ(service.fault_injector()->injected() +
                      service.fault_injector()->remaining(),
                  planned_faults);
      }
      ++runs;
    }
  }
  EXPECT_EQ(runs, 100);
}

// ---------------------------------------------------------------------
// Graceful degradation: budget overrun -> K cheap sweeps -> recovery.
// ---------------------------------------------------------------------

TEST(DegradationTest, BudgetOverrunRunsSweepLadderThenRecovers) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);

  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.event_bus = &bus;
  options.robustness.degradation.pause_budget_ns = 1;  // every pass overruns
  options.robustness.degradation.degraded_passes = 2;
  options.robustness.degradation.sweep_patience = 1;
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());

  // Pass 1 is a full pass; its pause (> 1 ns) degrades the service.
  service.RunDetectionPass();
  EXPECT_EQ(service.degraded_passes_remaining(), 2u);
  EXPECT_EQ(sink.Count(obs::EventKind::kDegraded), 1u);

  // A waiter blocks on t1's lock; no deadline, no deadlock — only the
  // degraded timeout sweep can (wrongly but cheaply) resolve it.
  std::thread waiter([&] {
    const TransactionId t2 = *service.Begin();
    Status s = service.AcquireBlocking(t2, 1, LockMode::kX);
    EXPECT_TRUE(s.IsAborted()) << s.ToString();
  });
  // Wait until the service observes the waiter (T2) as blocked.
  while (true) {
    Result<txn::TxnState> state = service.State(2);
    if (state.ok() && *state == txn::TxnState::kBlocked) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Pass 2 is a sweep: patience 1 aborts the blocked waiter.
  service.RunDetectionPass();
  EXPECT_EQ(service.sweep_aborts(), 1u);
  EXPECT_EQ(service.degraded_passes_remaining(), 1u);
  waiter.join();

  // Pass 3 is the last sweep of the ladder; nothing left to abort.
  service.RunDetectionPass();
  EXPECT_EQ(service.degraded_passes_remaining(), 0u);
  EXPECT_EQ(service.sweep_aborts(), 1u);

  // Pass 4 runs full detection again — and re-degrades (the budget is
  // still 1 ns), proving the engine actually left the sweep mode.
  service.RunDetectionPass();
  EXPECT_EQ(sink.Count(obs::EventKind::kDegraded), 2u);
  EXPECT_EQ(service.degraded_passes_remaining(), 2u);

  EXPECT_TRUE(service.Commit(t1).ok());
  EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
}

// ---------------------------------------------------------------------
// AcquireWithRetry: backoff-and-retry client helper.
// ---------------------------------------------------------------------

TEST(AcquireWithRetryTest, ExhaustedRetriesAbortTheTransaction) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.robustness.deadline.lock_wait = 2'000;  // 2 ms
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  const TransactionId t2 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());

  robustness::RetryOptions retry;
  retry.backoff_base = 100;
  retry.backoff_cap = 300;
  retry.max_attempts = 2;
  uint32_t attempts = 0;
  Status s =
      txn::AcquireWithRetry(service, t2, 1, LockMode::kX, retry, 7, &attempts);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  // max_attempts bounds the *retries*: the initial call plus 2 backed-off
  // retries, each ending in a deadline expiry.
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(service.deadline_expiries(), 3u);
  // The helper's client-side abort-after-N: the transaction is gone.
  EXPECT_EQ(*service.State(t2), txn::TxnState::kAborted);
  EXPECT_TRUE(service.Commit(t1).ok());
  EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
}

TEST(AcquireWithRetryTest, SucceedsOnceContentionClears) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.robustness.deadline.lock_wait = 1'000;  // 1 ms
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  const TransactionId t2 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());
  std::thread holder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    EXPECT_TRUE(service.Commit(t1).ok());
  });

  robustness::RetryOptions retry;
  retry.backoff_base = 100;
  retry.backoff_cap = 300;
  retry.max_attempts = 0;  // unlimited
  uint32_t attempts = 0;
  Status s =
      txn::AcquireWithRetry(service, t2, 1, LockMode::kX, retry, 9, &attempts);
  holder.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(attempts, 2u);  // the 1 ms deadline fired at least once
  EXPECT_TRUE(service.Commit(t2).ok());
  EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
}

// ---------------------------------------------------------------------
// Admission control and backpressure on the service.
// ---------------------------------------------------------------------

TEST(AdmissionTest, BeginIsShedAtMaxInflight) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.robustness.admission.max_inflight_txns = 1;
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  Result<TransactionId> t1 = service.Begin();
  ASSERT_TRUE(t1.ok());
  Result<TransactionId> shed = service.Begin();
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status().ToString();
  EXPECT_EQ(service.admission_rejects(), 1u);

  EXPECT_TRUE(service.Commit(*t1).ok());
  EXPECT_TRUE(service.Begin().ok());  // slot freed
}

TEST(AdmissionTest, AcquireIsShedAtQueueDepthWatermark) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 1;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.robustness.admission.queue_depth_watermark = 2;
  options.robustness.deadline.lock_wait = 50'000;  // waiters self-release
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());
  std::atomic<int> settled{0};
  auto block_on_r1 = [&] {
    const TransactionId tid = *service.Begin();
    Status s = service.AcquireBlocking(tid, 1, LockMode::kX);
    if (s.ok()) {
      EXPECT_TRUE(service.Commit(tid).ok());
    } else {
      EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
      EXPECT_TRUE(service.Abort(tid).ok());
    }
    settled.fetch_add(1);
  };
  std::thread w2(block_on_r1);
  std::thread w3(block_on_r1);
  // Wait for both waiters to be queued on resource 1's shard.
  while (true) {
    size_t blocked = 0;
    for (TransactionId tid = 2; tid <= 3; ++tid) {
      Result<txn::TxnState> state = service.State(tid);
      if (state.ok() && *state == txn::TxnState::kBlocked) ++blocked;
    }
    if (blocked == 2) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  const TransactionId t4 = *service.Begin();
  Status shed = service.AcquireBlocking(t4, 1, LockMode::kX);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_GE(service.admission_rejects(), 1u);
  EXPECT_TRUE(service.Abort(t4).ok());

  EXPECT_TRUE(service.Commit(t1).ok());  // drain the queue
  w2.join();
  w3.join();
  EXPECT_EQ(settled.load(), 2);
  EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
}

}  // namespace
}  // namespace twbg
