// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Differential tests between the sequential periodic detector and the
// component-parallel one (core/parallel_detector.h): over 1200+
// randomized schedules (uniform and zipf-skewed) and every checked-in
// scenario script, the parallel pass must produce byte-identical
// resolution reports, identical post states, and — when observed — an
// identical event stream (timing values aside), whether it runs on a
// worker pool or degenerates to the serial code path.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/oracle.h"
#include "core/parallel_detector.h"
#include "core/periodic_detector.h"
#include "core/script.h"
#include "core/tst.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/sinks.h"

#ifndef TWBG_SCENARIO_DIR
#error "TWBG_SCENARIO_DIR must be defined by the build"
#endif

namespace twbg::core {
namespace {

using lock::LockManager;
using lock::LockMode;

// One random lock-manager op, replayed in lockstep by both managers.
struct Op {
  lock::TransactionId tid = 0;
  lock::ResourceId rid = 0;
  LockMode mode = LockMode::kNL;
  bool release = false;
};

std::vector<Op> MakeSchedule(common::Rng& rng, int txns, int resources,
                             int ops, bool zipf) {
  std::vector<Op> schedule;
  schedule.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.tid = static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
    if (rng.NextBernoulli(0.1)) {
      op.release = true;
    } else {
      if (zipf) {
        // Squaring a uniform sample skews mass toward low rids — a cheap
        // zipf-like hot set, with the tail still producing the sparse
        // resources that give the TST several weak components.
        const double u = rng.NextDouble();
        op.rid = static_cast<lock::ResourceId>(
            1 + static_cast<int>(u * u * resources));
      } else {
        op.rid = static_cast<lock::ResourceId>(rng.NextInRange(1, resources));
      }
      op.mode = lock::kRealModes[rng.NextBelow(5)];
    }
    schedule.push_back(op);
  }
  return schedule;
}

void Apply(LockManager& lm, const Op& op) {
  if (op.release) {
    lm.ReleaseAll(op.tid);
  } else {
    (void)lm.Acquire(op.tid, op.rid, op.mode);
  }
}

// Event comparison: everything except the stopwatch-driven `value` of the
// pass-timing kinds must match (seq/time are re-stamped identically by
// construction; spans are manager-wide in both runs).
bool IsTimingKind(obs::EventKind kind) {
  return kind == obs::EventKind::kStep1 || kind == obs::EventKind::kStep2 ||
         kind == obs::EventKind::kPassEnd;
}

void ExpectSameStream(const std::deque<obs::Event>& seq_events,
                      const std::deque<obs::Event>& par_events,
                      const std::string& context) {
  ASSERT_EQ(seq_events.size(), par_events.size()) << context;
  for (size_t i = 0; i < seq_events.size(); ++i) {
    const obs::Event& s = seq_events[i];
    const obs::Event& p = par_events[i];
    ASSERT_EQ(s.kind, p.kind) << context << " event " << i;
    EXPECT_EQ(s.seq, p.seq) << context << " event " << i;
    EXPECT_EQ(s.time, p.time) << context << " event " << i;
    EXPECT_EQ(s.tid, p.tid) << context << " event " << i;
    EXPECT_EQ(s.rid, p.rid) << context << " event " << i;
    EXPECT_EQ(s.mode, p.mode) << context << " event " << i;
    EXPECT_EQ(s.a, p.a) << context << " event " << i;
    EXPECT_EQ(s.b, p.b) << context << " event " << i;
    EXPECT_EQ(s.span, p.span) << context << " event " << i;
    EXPECT_EQ(s.detail, p.detail) << context << " event " << i;
    if (!IsTimingKind(s.kind)) {
      EXPECT_EQ(s.value, p.value) << context << " event " << i;
    }
  }
}

class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Report parity on random schedules.  The detectors live across rounds,
// so both incremental caches also exercise the table-switch (full-sweep)
// path and the warm journal path.  6 seeds x 100 rounds x up to 4 passes
// each = well over 600 distinct states.
TEST_P(ParallelDifferentialTest, ReportParityOnRandomSchedules) {
  common::Rng rng(GetParam());
  common::ThreadPool pool(3);
  DetectorOptions options;
  PeriodicDetector seq(options);
  ParallelPeriodicDetector par(options, &pool);
  size_t total_cycles = 0;
  size_t multi_component_passes = 0;
  for (int round = 0; round < 100; ++round) {
    LockManager seq_lm, par_lm;
    CostTable seq_costs, par_costs;
    const int txns = 2 + static_cast<int>(rng.NextBelow(13));
    std::vector<Op> schedule = MakeSchedule(rng, txns, 10, 70, false);
    for (size_t i = 0; i < schedule.size(); ++i) {
      Apply(seq_lm, schedule[i]);
      Apply(par_lm, schedule[i]);
      if (i % 20 != 0 && i + 1 != schedule.size()) continue;
      ResolutionReport seq_report = seq.RunPass(seq_lm, seq_costs);
      ResolutionReport par_report = par.RunPass(par_lm, par_costs);
      ASSERT_EQ(seq_report.ToString(), par_report.ToString())
          << "seed " << GetParam() << " round " << round << " op " << i;
      ASSERT_EQ(Tst::Build(seq_lm.table()).ToString(),
                Tst::Build(par_lm.table()).ToString());
      total_cycles += par_report.cycles_detected;
      if (par.last_num_components() > 1) ++multi_component_passes;
    }
    // Identical post states, both deadlock-free and consistent.
    ASSERT_FALSE(AnalyzeByReduction(par_lm.table()).deadlocked);
    ASSERT_TRUE(seq_lm.CheckInvariants().ok());
    ASSERT_TRUE(par_lm.CheckInvariants().ok());
    // Costs must have received identical TDR-2 bumps.
    ASSERT_EQ(seq_costs.entries(), par_costs.entries());
  }
  EXPECT_GT(total_cycles, 0u);
  // The schedules must actually exercise the parallel partition.
  EXPECT_GT(multi_component_passes, 0u);
}

// Observed parity: with a bus on both sides, the parallel pass must
// replay its per-component event recordings into the exact sequential
// stream — same kinds, payloads, spans, details and sequence numbers.
TEST_P(ParallelDifferentialTest, EventStreamParityWhenObserved) {
  common::Rng rng(GetParam() ^ 0xabcdef);
  common::ThreadPool pool(3);
  for (int round = 0; round < 100; ++round) {
    obs::EventBus seq_bus, par_bus;
    obs::CollectorSink seq_sink, par_sink;
    seq_bus.Subscribe(&seq_sink);
    par_bus.Subscribe(&par_sink);
    DetectorOptions seq_options, par_options;
    seq_options.event_bus = &seq_bus;
    par_options.event_bus = &par_bus;
    PeriodicDetector seq(seq_options);
    ParallelPeriodicDetector par(par_options, &pool);
    LockManager seq_lm, par_lm;
    seq_lm.set_event_bus(&seq_bus);
    par_lm.set_event_bus(&par_bus);
    CostTable seq_costs, par_costs;
    const int txns = 2 + static_cast<int>(rng.NextBelow(11));
    std::vector<Op> schedule = MakeSchedule(rng, txns, 8, 60, false);
    for (size_t i = 0; i < schedule.size(); ++i) {
      Apply(seq_lm, schedule[i]);
      Apply(par_lm, schedule[i]);
    }
    ResolutionReport seq_report = seq.RunPass(seq_lm, seq_costs);
    ResolutionReport par_report = par.RunPass(par_lm, par_costs);
    ASSERT_EQ(seq_report.ToString(), par_report.ToString())
        << "seed " << GetParam() << " round " << round;
    // One post-mortem per resolved cycle on both sides (bus is active).
    ASSERT_EQ(par_report.post_mortems.size(), par_report.cycles_detected);
    std::ostringstream context;
    context << "seed " << GetParam() << " round " << round;
    ExpectSameStream(seq_sink.events(), par_sink.events(), context.str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// Zipf-skewed schedules: a hot resource set plus a sparse tail produce
// the many-small-components shape the sharded service sees in practice.
// 300 more schedules, pool and serial (null-pool) parallel paths agreeing
// with the sequential detector and with each other.
TEST(ParallelDifferentialZipfTest, SkewedSchedulesAgreeOnAllPaths) {
  common::Rng rng(777777);
  common::ThreadPool pool(3);
  DetectorOptions options;
  PeriodicDetector seq(options);
  ParallelPeriodicDetector pooled(options, &pool);
  ParallelPeriodicDetector serial(options, nullptr);
  size_t total_cycles = 0;
  for (int round = 0; round < 300; ++round) {
    LockManager seq_lm, pool_lm, serial_lm;
    CostTable seq_costs, pool_costs, serial_costs;
    const int txns = 2 + static_cast<int>(rng.NextBelow(15));
    std::vector<Op> schedule = MakeSchedule(rng, txns, 12, 60, true);
    for (const Op& op : schedule) {
      Apply(seq_lm, op);
      Apply(pool_lm, op);
      Apply(serial_lm, op);
    }
    ResolutionReport seq_report = seq.RunPass(seq_lm, seq_costs);
    ResolutionReport pool_report = pooled.RunPass(pool_lm, pool_costs);
    ResolutionReport serial_report = serial.RunPass(serial_lm, serial_costs);
    ASSERT_EQ(seq_report.ToString(), pool_report.ToString())
        << "round " << round;
    ASSERT_EQ(seq_report.ToString(), serial_report.ToString())
        << "round " << round;
    ASSERT_EQ(Tst::Build(seq_lm.table()).ToString(),
              Tst::Build(pool_lm.table()).ToString());
    ASSERT_TRUE(pool_lm.CheckInvariants().ok());
    total_cycles += pool_report.cycles_detected;
  }
  EXPECT_GT(total_cycles, 0u);
}

// Every checked-in scenario script, replayed state-only (acquire /
// release / cost lines; detection left to the test), must yield a
// byte-identical report from both detectors.
TEST(ParallelScenarioTest, ScriptsYieldIdenticalReports) {
  size_t count = 0;
  common::ThreadPool pool(3);
  for (const auto& entry :
       std::filesystem::directory_iterator(TWBG_SCENARIO_DIR)) {
    if (entry.path().extension() != ".twbg") continue;
    ++count;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    ScriptRunner seq_runner, par_runner;
    std::string line;
    while (std::getline(file, line)) {
      // Keep only the state-building commands; the script's own `detect`
      // (and its expectations) would resolve the deadlock before the
      // detectors under test see it.
      std::istringstream tokens(line);
      std::string command;
      tokens >> command;
      if (command != "acquire" && command != "release" && command != "cost") {
        continue;
      }
      std::string out;
      ASSERT_TRUE(seq_runner.ExecuteLine(line, &out).ok())
          << entry.path() << ": " << line;
      ASSERT_TRUE(par_runner.ExecuteLine(line, &out).ok())
          << entry.path() << ": " << line;
    }
    PeriodicDetector seq;
    ParallelPeriodicDetector par({}, &pool);
    ResolutionReport seq_report =
        seq.RunPass(seq_runner.manager(), seq_runner.costs());
    ResolutionReport par_report =
        par.RunPass(par_runner.manager(), par_runner.costs());
    EXPECT_EQ(seq_report.ToString(), par_report.ToString()) << entry.path();
    EXPECT_EQ(Tst::Build(seq_runner.manager().table()).ToString(),
              Tst::Build(par_runner.manager().table()).ToString())
        << entry.path();
    EXPECT_TRUE(par_runner.manager().CheckInvariants().ok()) << entry.path();
  }
  EXPECT_GE(count, 4u);
}

}  // namespace
}  // namespace twbg::core
