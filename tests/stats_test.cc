// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/stats.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "common/stopwatch.h"
#include "sim/simulator.h"

namespace twbg::sim {
namespace {

TEST(SampleStatsTest, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 0.0);
  EXPECT_EQ(stats.Summary(), "n=0");
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(7.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 7.0);
}

TEST(SampleStatsTest, PercentilesInterpolate) {
  SampleStats stats;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(12.5), 15.0);  // interpolated
  EXPECT_DOUBLE_EQ(stats.mean(), 30.0);
}

TEST(SampleStatsTest, UnsortedInsertOrder) {
  SampleStats stats;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 3.0);
  stats.Add(0.0);  // adding after a percentile query re-sorts lazily
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 0.0);
}

TEST(SampleStatsTest, PercentileClampsArgument) {
  SampleStats stats;
  stats.Add(1.0);
  stats.Add(2.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(200), 2.0);
}

TEST(SampleStatsTest, SummaryFormat) {
  SampleStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  std::string s = stats.Summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean=2.0"), std::string::npos);
}

TEST(StopwatchTest, ElapsedIsMonotoneAndResets) {
  common::Stopwatch watch;
  int64_t first = watch.ElapsedNanos();
  EXPECT_GE(first, 0);
  // Do a little work; elapsed must not go backwards.
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  int64_t second = watch.ElapsedNanos();
  EXPECT_GE(second, first);
  EXPECT_GE(watch.ElapsedMicros(), second / 1e3);  // unit conversions agree
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(SimWaitStatsTest, ContendedRunRecordsWaits) {
  SimConfig config;
  config.workload.seed = 3;
  config.workload.num_transactions = 60;
  config.workload.concurrency = 6;
  config.workload.num_resources = 8;
  config.workload.zipf_theta = 0.9;
  config.detection_period = 5;
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.wait_ticks.count(), 0u);
  EXPECT_GT(metrics.wait_ticks.max(), 0.0);
  EXPECT_GE(metrics.wait_ticks.Percentile(95),
            metrics.wait_ticks.Percentile(50));
  EXPECT_NE(metrics.ToString().find("wait[n="), std::string::npos);
}

TEST(SimWaitStatsTest, UncontendedRunHasNoWaits) {
  SimConfig config;
  config.workload.seed = 4;
  config.workload.num_transactions = 40;
  config.workload.concurrency = 4;
  config.workload.num_resources = 5000;
  config.workload.zipf_theta = 0.0;
  config.detection_period = 5;
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.wait_ticks.count(), 0u);
}

}  // namespace
}  // namespace twbg::sim
