// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the compatibility (Table 1) and conversion (Table 2) matrices.

#include "lock/lock_mode.h"

#include <gtest/gtest.h>

namespace twbg::lock {
namespace {

TEST(LockModeTest, CompatibilityMatrixMatchesTable1) {
  using enum LockMode;
  // Row-by-row transcription of Table 1 (with the Comp(S,S)=true OCR fix
  // justified by Example 5.1; see DESIGN.md).
  const bool expected[6][6] = {
      /*NL*/ {true, true, true, true, true, true},
      /*IS*/ {true, true, true, true, true, false},
      /*IX*/ {true, true, true, false, false, false},
      /*SIX*/ {true, true, false, false, false, false},
      /*S*/ {true, true, false, false, true, false},
      /*X*/ {true, false, false, false, false, false},
  };
  for (int i = 0; i < kNumLockModes; ++i) {
    for (int j = 0; j < kNumLockModes; ++j) {
      EXPECT_EQ(Compatible(kAllModes[i], kAllModes[j]), expected[i][j])
          << ToString(kAllModes[i]) << " vs " << ToString(kAllModes[j]);
    }
  }
}

TEST(LockModeTest, ConversionMatrixMatchesTable2) {
  using enum LockMode;
  const LockMode expected[6][6] = {
      /*NL*/ {kNL, kIS, kIX, kSIX, kS, kX},
      /*IS*/ {kIS, kIS, kIX, kSIX, kS, kX},
      /*IX*/ {kIX, kIX, kIX, kSIX, kSIX, kX},
      /*SIX*/ {kSIX, kSIX, kSIX, kSIX, kSIX, kX},
      /*S*/ {kS, kS, kSIX, kSIX, kS, kX},
      /*X*/ {kX, kX, kX, kX, kX, kX},
  };
  for (int i = 0; i < kNumLockModes; ++i) {
    for (int j = 0; j < kNumLockModes; ++j) {
      EXPECT_EQ(Convert(kAllModes[i], kAllModes[j]), expected[i][j])
          << ToString(kAllModes[i]) << " + " << ToString(kAllModes[j]);
    }
  }
}

TEST(LockModeTest, PaperExamplesFromSection2) {
  // "Comp(S, IS) is true but Comp(IX, SIX) is false."
  EXPECT_TRUE(Compatible(LockMode::kS, LockMode::kIS));
  EXPECT_FALSE(Compatible(LockMode::kIX, LockMode::kSIX));
  // "when a transaction holds an IX lock ... and re-requests an S lock,
  // the transaction eventually wants to hold an SIX lock."
  EXPECT_EQ(Convert(LockMode::kIX, LockMode::kS), LockMode::kSIX);
}

TEST(LockModeTest, CompatibilityIsSymmetric) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      EXPECT_EQ(Compatible(a, b), Compatible(b, a));
    }
  }
}

TEST(LockModeTest, NlIsCompatibleWithEverything) {
  for (LockMode a : kAllModes) {
    EXPECT_TRUE(Compatible(LockMode::kNL, a));
  }
}

TEST(LockModeTest, ConversionIsALeastUpperBound) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      LockMode lub = Convert(a, b);
      // Upper bound of both.
      EXPECT_TRUE(Covers(lub, a));
      EXPECT_TRUE(Covers(lub, b));
      // Least: any common upper bound covers it.
      for (LockMode c : kAllModes) {
        if (Covers(c, a) && Covers(c, b)) {
          EXPECT_TRUE(Covers(c, lub))
              << ToString(c) << " above " << ToString(a) << "," << ToString(b);
        }
      }
    }
  }
}

TEST(LockModeTest, ConversionIsCommutativeAssociativeIdempotent) {
  for (LockMode a : kAllModes) {
    EXPECT_EQ(Convert(a, a), a);
    for (LockMode b : kAllModes) {
      EXPECT_EQ(Convert(a, b), Convert(b, a));
      for (LockMode c : kAllModes) {
        EXPECT_EQ(Convert(Convert(a, b), c), Convert(a, Convert(b, c)));
      }
    }
  }
}

TEST(LockModeTest, StrongerModesConflictMore) {
  // Monotonicity: if a covers b, anything compatible with a is compatible
  // with b.
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      if (!Covers(a, b)) continue;
      for (LockMode c : kAllModes) {
        if (Compatible(a, c)) {
          EXPECT_TRUE(Compatible(b, c))
              << ToString(b) << " under " << ToString(a) << " vs "
              << ToString(c);
        }
      }
    }
  }
}

TEST(LockModeTest, StringRoundTrip) {
  for (LockMode mode : kAllModes) {
    auto parsed = LockModeFromString(ToString(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(LockModeFromString("U").has_value());
  EXPECT_FALSE(LockModeFromString("").has_value());
  EXPECT_FALSE(LockModeFromString("is").has_value());
}

TEST(LockModeTest, XConflictsWithEverythingReal) {
  for (LockMode mode : kRealModes) {
    EXPECT_FALSE(Compatible(LockMode::kX, mode));
  }
}

}  // namespace
}  // namespace twbg::lock
