// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/status.h"

#include <gtest/gtest.h>

namespace twbg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("resource 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "resource 7");
  EXPECT_EQ(s.ToString(), "NotFound: resource 7");
}

TEST(StatusTest, AllConstructorsSetTheirCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::WouldBlock("x").IsWouldBlock());
  EXPECT_TRUE(Status::DeadlockVictim("x").IsDeadlockVictim());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, HistoricalAliasesShareCodes) {
  // kBlocked/kAborted are aliases kept for source compatibility with the
  // pre-robustness surface; both spellings must agree in both directions.
  EXPECT_EQ(StatusCode::kBlocked, StatusCode::kWouldBlock);
  EXPECT_EQ(StatusCode::kAborted, StatusCode::kDeadlockVictim);
  EXPECT_TRUE(Status::Aborted("x").IsDeadlockVictim());
  EXPECT_TRUE(Status::DeadlockVictim("x").IsAborted());
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_TRUE(s.IsInternal());  // source intact after copy
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsInternal());
  copy = moved;
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusTest, CodeToString) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kWouldBlock), "WouldBlock");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlockVictim),
            "DeadlockVictim");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  // Aliases render under the canonical spelling.
  EXPECT_EQ(StatusCodeToString(StatusCode::kBlocked), "WouldBlock");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAborted), "DeadlockVictim");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r->size(), 3u);
  std::vector<int> taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Aborted("victim"); };
  auto wrapper = [&]() -> Status {
    TWBG_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsAborted());
}

}  // namespace
}  // namespace twbg
