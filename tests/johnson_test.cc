// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/johnson.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace twbg::graph {
namespace {

// Canonical form: rotate so the smallest node leads; set-of-cycles compare.
std::set<std::vector<NodeId>> Canonical(
    const std::vector<std::vector<NodeId>>& cycles) {
  std::set<std::vector<NodeId>> out;
  for (const auto& cycle : cycles) {
    auto it = std::min_element(cycle.begin(), cycle.end());
    std::vector<NodeId> rotated(it, cycle.end());
    rotated.insert(rotated.end(), cycle.begin(), it);
    out.insert(std::move(rotated));
  }
  return out;
}

TEST(JohnsonTest, AcyclicGraphHasNoCircuits) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_TRUE(ElementaryCircuits(g).empty());
}

TEST(JohnsonTest, SingleCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto circuits = ElementaryCircuits(g);
  ASSERT_EQ(circuits.size(), 1u);
  EXPECT_EQ(Canonical(circuits),
            (std::set<std::vector<NodeId>>{{0, 1, 2}}));
}

TEST(JohnsonTest, SelfLoop) {
  Digraph g(2);
  g.AddEdge(1, 1);
  auto circuits = ElementaryCircuits(g);
  ASSERT_EQ(circuits.size(), 1u);
  EXPECT_EQ(circuits[0], (std::vector<NodeId>{1}));
}

TEST(JohnsonTest, TwoNodeAndThreeNodeSharedCycles) {
  // 0<->1 plus 0->1->2->0: two elementary circuits.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto canon = Canonical(ElementaryCircuits(g));
  EXPECT_EQ(canon, (std::set<std::vector<NodeId>>{{0, 1}, {0, 1, 2}}));
}

TEST(JohnsonTest, CompleteDigraphCounts) {
  // Complete digraph on n vertices has sum_{k=2..n} C(n,k)(k-1)! circuits:
  // n=2 -> 1, n=3 -> 5, n=4 -> 20, n=5 -> 84.
  const size_t expected[] = {0, 0, 1, 5, 20, 84};
  for (size_t n = 2; n <= 5; ++n) {
    Digraph g(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v) g.AddEdge(u, v);
      }
    }
    EXPECT_EQ(CountElementaryCircuits(g), expected[n]) << "n=" << n;
  }
}

TEST(JohnsonTest, ParallelEdgesDoNotDuplicateCircuits) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(CountElementaryCircuits(g), 1u);
}

TEST(JohnsonTest, MaxCircuitsCapIsHonored) {
  Digraph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  EXPECT_EQ(CountElementaryCircuits(g, 10), 10u);
}

TEST(JohnsonTest, EveryReportedCircuitIsElementaryAndReal) {
  common::Rng rng(1234);
  for (int round = 0; round < 30; ++round) {
    const size_t n = 2 + rng.NextBelow(7);
    Digraph g(n);
    const size_t edges = rng.NextBelow(2 * n + 2);
    for (size_t i = 0; i < edges; ++i) {
      g.AddEdge(static_cast<NodeId>(rng.NextBelow(n)),
                static_cast<NodeId>(rng.NextBelow(n)));
    }
    auto circuits = ElementaryCircuits(g);
    // No duplicates under rotation.
    EXPECT_EQ(Canonical(circuits).size(), circuits.size());
    for (const auto& c : circuits) {
      // Elementary: no repeated vertex.
      EXPECT_EQ(std::set<NodeId>(c.begin(), c.end()).size(), c.size());
      // Real: all edges present.
      for (size_t i = 0; i < c.size(); ++i) {
        const auto& out = g.OutEdges(c[i]);
        EXPECT_NE(std::find(out.begin(), out.end(), c[(i + 1) % c.size()]),
                  out.end());
      }
    }
    // Existence agrees with plain cycle detection.
    EXPECT_EQ(!circuits.empty(), g.HasCycle());
  }
}

}  // namespace
}  // namespace twbg::graph
