// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Exact edge-set tests for the Edge Construction Rules against the
// paper's worked examples (Figure 4.1 and Figure 5.2).

#include "core/ecr.h"

#include <gtest/gtest.h>

#include "core/examples_catalog.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using lock::LockMode;
using enum lock::LockMode;

TwbgEdge H(lock::TransactionId from, lock::TransactionId to,
           lock::ResourceId rid) {
  return TwbgEdge{from, to, kNL, rid};
}

TwbgEdge W(lock::TransactionId from, lock::TransactionId to, LockMode bm,
           lock::ResourceId rid) {
  return TwbgEdge{from, to, bm, rid};
}

TEST(EcrTest, Example41EdgeSetMatchesFigure41) {
  lock::LockManager lm;
  BuildExample41(lm);
  std::vector<TwbgEdge> edges =
      BuildEcrEdges(lm.table(), /*include_sentinels=*/false);
  const std::vector<TwbgEdge> expected = {
      // R1, ECR-1: T1's IX/SIX blocks T2's S; T3's granted IX blocks both
      // upgraders.
      H(1, 2, kR1), H(3, 1, kR1), H(3, 2, kR1),
      // R1, ECR-2: first conflicting queue member per holder; T4 blocks
      // nobody.
      H(1, 5, kR1), H(2, 5, kR1), H(3, 6, kR1),
      // R1, ECR-3.
      W(5, 6, kIX, kR1), W(6, 7, kS, kR1),
      // R2, ECR-2 and ECR-3.
      H(7, 8, kR2), W(8, 9, kX, kR2), W(9, 3, kIX, kR2), W(3, 4, kS, kR2)};
  EXPECT_EQ(edges, expected);
}

TEST(EcrTest, Example41SentinelEdges) {
  lock::LockManager lm;
  BuildExample41(lm);
  std::vector<TwbgEdge> edges =
      BuildEcrEdges(lm.table(), /*include_sentinels=*/true);
  // Two sentinels: T7 (last in R1's queue) and T4 (last in R2's queue).
  std::vector<TwbgEdge> sentinels;
  for (const TwbgEdge& e : edges) {
    if (e.IsSentinel()) sentinels.push_back(e);
  }
  ASSERT_EQ(sentinels.size(), 2u);
  EXPECT_EQ(sentinels[0], W(7, 0, kIX, kR1));
  EXPECT_EQ(sentinels[1], W(4, 0, kX, kR2));
  // Sentinel-free build is the same list minus the sentinels.
  EXPECT_EQ(edges.size(),
            BuildEcrEdges(lm.table(), /*include_sentinels=*/false).size() + 2);
}

TEST(EcrTest, Example51EdgeSetMatchesFigure52) {
  lock::LockManager lm;
  BuildExample51(lm);
  std::vector<TwbgEdge> edges =
      BuildEcrEdges(lm.table(), /*include_sentinels=*/false);
  const std::vector<TwbgEdge> expected = {
      H(1, 2, kR1),        // holder T1 -> first conflicting waiter T2
      W(2, 3, kX, kR1),    // queue adjacency
      H(2, 1, kR2),        // R2 holders -> waiter T1
      H(3, 1, kR2),
  };
  EXPECT_EQ(edges, expected);
}

TEST(EcrTest, Ecr1ConversionDeadlockProducesBothEdges) {
  // Observation 3.1(3): two IS->X upgraders in one holder list wait on
  // each other — ECR-1 emits both directions.
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 9, kIS).ok());
  ASSERT_TRUE(lm.Acquire(2, 9, kIS).ok());
  ASSERT_TRUE(lm.Acquire(1, 9, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 9, kX).ok());
  std::vector<TwbgEdge> edges = BuildEcrEdges(lm.table(), false);
  EXPECT_EQ(edges, (std::vector<TwbgEdge>{H(1, 2, 9), H(2, 1, 9)}));
}

TEST(EcrTest, Ecr2SkipsCompatibleQueuePrefix) {
  // Holder S; queue (IS, IS, X): the first member conflicting with S is
  // the third.
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 5, kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 5, kX).ok());   // front, conflicts
  ASSERT_TRUE(lm.ReleaseAll(2).empty());    // leave queue empty again
  ASSERT_TRUE(lm.Acquire(3, 5, kX).ok());   // conflicts -> queued
  ASSERT_TRUE(lm.Acquire(4, 5, kIS).ok());  // compatible but FIFO-queued
  ASSERT_TRUE(lm.Acquire(5, 5, kX).ok());
  std::vector<TwbgEdge> edges = BuildEcrEdges(lm.table(), false);
  // Holder T1 points at T3 (first conflicting), not T4.
  ASSERT_FALSE(edges.empty());
  EXPECT_EQ(edges[0], H(1, 3, 5));
}

TEST(EcrTest, NoEdgesWithoutWaiters) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kIX).ok());
  ASSERT_TRUE(lm.Acquire(3, 2, kS).ok());
  EXPECT_TRUE(BuildEcrEdges(lm.table(), true).empty());
}

TEST(EcrTest, EdgeToString) {
  EXPECT_EQ(H(1, 2, 3).ToString(), "T1 -H(R3)-> T2");
  EXPECT_EQ(W(5, 6, kIX, 1).ToString(), "T5 -W(R1)-> T6");
  EXPECT_EQ(W(7, 0, kIX, 1).ToString(), "T7 -W(R1)-> (end)");
}

}  // namespace
}  // namespace twbg::core
