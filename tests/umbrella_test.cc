// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Compile-and-smoke test for the umbrella header: everything a downstream
// user needs is reachable from one include.

#include "twbg.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, EndToEndThroughPublicApi) {
  twbg::lock::LockManager manager;
  twbg::core::BuildExample51(manager);
  EXPECT_TRUE(twbg::core::HwTwbg::Build(manager.table()).HasCycle());

  twbg::core::CostTable costs;
  twbg::core::PeriodicDetector detector;
  twbg::core::ResolutionReport report = detector.RunPass(manager, costs);
  EXPECT_TRUE(report.found_deadlock());
  EXPECT_FALSE(twbg::core::AnalyzeByReduction(manager.table()).deadlocked);

  auto strategy = twbg::baselines::MakeStrategy("hwtwbg-periodic");
  ASSERT_NE(strategy, nullptr);

  twbg::sim::SimConfig config;
  config.workload.num_transactions = 10;
  config.workload.concurrency = 3;
  twbg::sim::Simulator sim(config, std::move(strategy));
  EXPECT_EQ(sim.Run().committed, 10u);
}

}  // namespace
