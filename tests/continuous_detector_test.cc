// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the continuous (detect-on-block) companion detector.

#include "core/continuous_detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/oracle.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;
using lock::RequestOutcome;

TEST(ContinuousDetectorTest, DetectsTwoTransactionDeadlockAtBlockTime) {
  lock::LockManager lm;
  CostTable costs;
  ContinuousDetector detector;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  Result<RequestOutcome> blocked = lm.Acquire(1, 2, kX);
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(*blocked, RequestOutcome::kBlocked);
  // No deadlock yet.
  ResolutionReport first = detector.OnBlock(lm, costs, 1);
  EXPECT_EQ(first.cycles_detected, 0u);
  // The closing request.
  blocked = lm.Acquire(2, 1, kX);
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(*blocked, RequestOutcome::kBlocked);
  ResolutionReport second = detector.OnBlock(lm, costs, 2);
  EXPECT_EQ(second.cycles_detected, 1u);
  EXPECT_EQ(second.aborted.size(), 1u);
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(ContinuousDetectorTest, VictimIsCheapestInCycle) {
  lock::LockManager lm;
  CostTable costs;
  costs.Set(1, 10.0);
  costs.Set(2, 3.0);
  ContinuousDetector detector;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ResolutionReport report = detector.OnBlock(lm, costs, 2);
  EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{2}));
  // T1 inherits both locks.
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{1}));
  EXPECT_FALSE(lm.IsBlocked(1));
}

TEST(ContinuousDetectorTest, ResolvesConversionDeadlockViaTdr2WhenCheap) {
  // Example 5.1 shape: with uniform costs the {T1,T2,T3} cycle offers
  // TDR-2 at T3 with cost 0.5 — chosen over any abort.
  lock::LockManager lm;
  CostTable costs;
  ContinuousDetector detector;
  ASSERT_TRUE(lm.Acquire(1, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 2, kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ResolutionReport report = detector.OnBlock(lm, costs, 1);
  ASSERT_GE(report.cycles_detected, 1u);
  // First decision is the long cycle; TDR-2 repositions {T2} on R1.
  EXPECT_EQ(report.decisions[0].victim().kind, VictimKind::kReposition);
  EXPECT_EQ(report.decisions[0].victim().st,
            (std::vector<lock::TransactionId>{2}));
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(ContinuousDetectorTest, NoFalsePositives) {
  lock::LockManager lm;
  CostTable costs;
  ContinuousDetector detector;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  for (lock::TransactionId tid : {2u, 3u}) {
    ResolutionReport report = detector.OnBlock(lm, costs, tid);
    EXPECT_EQ(report.cycles_detected, 0u);
    EXPECT_TRUE(report.aborted.empty());
  }
  EXPECT_TRUE(lm.IsBlocked(2));
  EXPECT_TRUE(lm.IsBlocked(3));
}

TEST(ContinuousDetectorTest, UnknownTransactionIsHarmless) {
  lock::LockManager lm;
  CostTable costs;
  ContinuousDetector detector;
  ResolutionReport report = detector.OnBlock(lm, costs, 42);
  EXPECT_EQ(report.cycles_detected, 0u);
}

// Property: driving random workloads with detection-on-block keeps the
// system permanently deadlock-free (deadlocks never outlive the request
// that created them), matching the oracle after every single operation.
class ContinuousPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContinuousPropertyTest, SystemNeverStaysDeadlocked) {
  common::Rng rng(GetParam());
  lock::LockManager lm;
  CostTable costs;
  ContinuousDetector detector;
  const int txns = 8;
  for (int op = 0; op < 600; ++op) {
    lock::TransactionId tid =
        static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
    if (rng.NextBernoulli(0.12)) {
      lm.ReleaseAll(tid);
      costs.Erase(tid);
      continue;
    }
    lock::ResourceId rid = static_cast<lock::ResourceId>(rng.NextInRange(1, 4));
    Result<RequestOutcome> outcome =
        lm.Acquire(tid, rid, lock::kRealModes[rng.NextBelow(5)]);
    if (!outcome.ok()) continue;  // tid was blocked; skip
    if (*outcome == RequestOutcome::kBlocked) {
      detector.OnBlock(lm, costs, tid);
    }
    ASSERT_FALSE(AnalyzeByReduction(lm.table()).deadlocked)
        << "op=" << op << "\n"
        << lm.table().ToString();
    ASSERT_FALSE(HwTwbg::Build(lm.table()).HasCycle());
    Status invariants = lm.CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace twbg::core
