// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Differential tests between the periodic and continuous detectors: on
// identical states both must leave the system deadlock-free with
// consistent bookkeeping (their victim choices may differ — the
// continuous detector sees cycles one block at a time).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/continuous_detector.h"
#include "core/oracle.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/sinks.h"

namespace twbg::core {
namespace {

TEST(DifferentialTest, BothDetectorsFullyResolveRandomStates) {
  common::Rng rng(13371337);
  // The periodic side runs observed: every resolved cycle must produce
  // exactly one kCyclePostMortem, and observing must not perturb the
  // byte-for-byte agreement below.
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  size_t total_cycles = 0;
  for (int round = 0; round < 120; ++round) {
    // Build the same random state twice.
    lock::LockManager periodic_lm;
    lock::LockManager continuous_lm;
    const int txns = 2 + static_cast<int>(rng.NextBelow(10));
    const int ops = 20 + static_cast<int>(rng.NextBelow(90));
    for (int op = 0; op < ops; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, 4));
      lock::LockMode mode = lock::kRealModes[rng.NextBelow(5)];
      (void)periodic_lm.Acquire(tid, rid, mode);
      (void)continuous_lm.Acquire(tid, rid, mode);
    }
    const bool deadlocked =
        AnalyzeByReduction(periodic_lm.table()).deadlocked;

    CostTable periodic_costs;
    DetectorOptions periodic_options;
    periodic_options.event_bus = &bus;
    PeriodicDetector periodic(periodic_options);
    ResolutionReport periodic_report =
        periodic.RunPass(periodic_lm, periodic_costs);
    ASSERT_EQ(periodic_report.post_mortems.size(),
              periodic_report.cycles_detected)
        << "round " << round;
    total_cycles += periodic_report.cycles_detected;

    CostTable continuous_costs;
    ContinuousDetector continuous;
    size_t continuous_cycles = 0;
    for (lock::TransactionId tid : continuous_lm.BlockedTransactions()) {
      ResolutionReport r =
          continuous.OnBlock(continuous_lm, continuous_costs, tid);
      continuous_cycles += r.cycles_detected;
    }

    // Agreement on existence...
    ASSERT_EQ(periodic_report.found_deadlock(), deadlocked);
    ASSERT_EQ(continuous_cycles > 0, deadlocked) << "round " << round;
    // ...and on the postcondition.
    ASSERT_FALSE(AnalyzeByReduction(periodic_lm.table()).deadlocked);
    ASSERT_FALSE(AnalyzeByReduction(continuous_lm.table()).deadlocked);
    ASSERT_FALSE(HwTwbg::Build(continuous_lm.table()).HasCycle());
    ASSERT_TRUE(periodic_lm.CheckInvariants().ok());
    ASSERT_TRUE(continuous_lm.CheckInvariants().ok());
  }
  // One post-mortem per resolved cycle across the whole suite.
  EXPECT_GT(total_cycles, 0u);
  EXPECT_EQ(sink.Count(obs::EventKind::kCyclePostMortem), total_cycles);
  EXPECT_EQ(sink.Count(obs::EventKind::kCycleResolved), total_cycles);
}

TEST(DifferentialTest, ContinuousAfterPeriodicFindsNothing) {
  common::Rng rng(909090);
  for (int round = 0; round < 80; ++round) {
    lock::LockManager lm;
    for (int op = 0; op < 80; ++op) {
      (void)lm.Acquire(
          static_cast<lock::TransactionId>(rng.NextInRange(1, 9)),
          static_cast<lock::ResourceId>(rng.NextInRange(1, 4)),
          lock::kRealModes[rng.NextBelow(5)]);
    }
    CostTable costs;
    PeriodicDetector periodic;
    periodic.RunPass(lm, costs);
    ContinuousDetector continuous;
    for (lock::TransactionId tid : lm.BlockedTransactions()) {
      ResolutionReport r = continuous.OnBlock(lm, costs, tid);
      ASSERT_EQ(r.cycles_detected, 0u);
      ASSERT_TRUE(r.aborted.empty());
    }
  }
}

}  // namespace
}  // namespace twbg::core
