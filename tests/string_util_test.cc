// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace twbg::common {
namespace {

TEST(StringUtilTest, Format) {
  EXPECT_EQ(Format("T%u waits on R%u", 3u, 7u), "T3 waits on R7");
  EXPECT_EQ(Format("%.2f", 1.5), "1.50");
  EXPECT_EQ(Format("plain"), "plain");
  EXPECT_EQ(Format("%s", ""), "");
}

TEST(StringUtilTest, FormatLongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(Format("%s", big.c_str()).size(), 500u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " -> "), "a -> b -> c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("", ',', /*skip_empty=*/true), (std::vector<std::string>{}));
}

TEST(StringUtilTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadRight("", 3), "   ");
}

}  // namespace
}  // namespace twbg::common
