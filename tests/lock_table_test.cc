// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace twbg::lock {
namespace {

using enum LockMode;

TEST(LockTableTest, GetOrCreateIsIdempotent) {
  LockTable table;
  ResourceState& a = table.GetOrCreate(7);
  ResourceState& b = table.GetOrCreate(7);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(a.rid(), 7u);
}

TEST(LockTableTest, FindReturnsNullForUnknown) {
  LockTable table;
  EXPECT_EQ(table.Find(3), nullptr);
  table.GetOrCreate(3);
  EXPECT_NE(table.Find(3), nullptr);
  EXPECT_NE(table.FindMutable(3), nullptr);
}

TEST(LockTableTest, EraseIfFreeDropsOnlyFreeResources) {
  LockTable table;
  ResourceState& r = table.GetOrCreate(1);
  ASSERT_TRUE(r.Request(1, kS).ok());
  table.EraseIfFree(1);
  EXPECT_NE(table.Find(1), nullptr);  // held: kept
  table.GetOrCreate(2);
  table.EraseIfFree(2);
  EXPECT_EQ(table.Find(2), nullptr);  // free: dropped
}

TEST(LockTableTest, IterationIsOrderedByResourceId) {
  LockTable table;
  table.GetOrCreate(5);
  table.GetOrCreate(1);
  table.GetOrCreate(3);
  std::vector<ResourceId> seen;
  for (const auto& [rid, state] : table) seen.push_back(rid);
  EXPECT_EQ(seen, (std::vector<ResourceId>{1, 3, 5}));
}

// The ordered-iteration seam must survive arbitrary create/erase churn:
// the hash table underneath iterates in insertion-perturbed order, so
// ascending-rid iteration is a maintained index, not an accident.  Drive
// it against a std::set oracle.
TEST(LockTableTest, OrderedIterationSurvivesChurn) {
  common::Rng rng(0x10ab1e);
  LockTable table;
  std::set<ResourceId> oracle;
  for (int op = 0; op < 20000; ++op) {
    const ResourceId rid = static_cast<ResourceId>(rng.NextInRange(1, 300));
    if (rng.NextBernoulli(0.4)) {
      // Erase path: only free states are dropped, so make it free first.
      if (ResourceState* state = table.FindMutable(rid)) state->Remove(1);
      table.EraseIfFree(rid);
      oracle.erase(rid);
    } else {
      ResourceState& state = table.GetOrCreate(rid);
      // Recycled or fresh, the slot must come back as a free state with
      // the right identity.
      ASSERT_EQ(state.rid(), rid);
      if (state.IsFree()) ASSERT_TRUE(state.TryFastGrant(1, kX));
      oracle.insert(rid);
    }
    if (op % 500 == 0) {
      std::vector<ResourceId> seen;
      for (const auto& [r, s] : table) seen.push_back(r);
      ASSERT_TRUE(std::equal(seen.begin(), seen.end(), oracle.begin(),
                             oracle.end()))
          << "iteration diverged from ascending-rid order at op " << op;
    }
  }
  std::vector<ResourceId> seen;
  for (const auto& [r, s] : table) seen.push_back(r);
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

TEST(LockTableTest, RecycledStatesStartFresh) {
  LockTable table;
  // Spill R1's queue past the inline capacity, then free and erase it so
  // the state lands in the pool with heap capacity.
  ResourceState& first = table.GetOrCreate(1);
  ASSERT_TRUE(first.Request(1, kX).ok());
  for (TransactionId tid = 2; tid <= 9; ++tid) {
    ASSERT_TRUE(first.Request(tid, kX).ok());  // queues
  }
  for (TransactionId tid = 1; tid <= 9; ++tid) first.Remove(tid);
  table.EraseIfFree(1);
  ASSERT_EQ(table.Find(1), nullptr);
  // The recycled slot must be indistinguishable from a new resource.
  ResourceState& reborn = table.GetOrCreate(2);
  EXPECT_EQ(reborn.rid(), 2u);
  EXPECT_TRUE(reborn.IsFree());
  EXPECT_EQ(reborn.total_mode(), kNL);
  EXPECT_TRUE(reborn.CheckInvariants().ok());
}

TEST(LockTableTest, CopyIsDeep) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kX).ok());
  LockTable copy = table;
  copy.FindMutable(1)->Remove(1);
  EXPECT_TRUE(copy.Find(1)->IsFree());
  EXPECT_FALSE(table.Find(1)->IsFree());
}

TEST(LockTableTest, CheckInvariantsAggregates) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kS).ok());
  ASSERT_TRUE(table.GetOrCreate(2).Request(2, kX).ok());
  EXPECT_TRUE(table.CheckInvariants().ok());
}

TEST(LockTableTest, ToStringListsResources) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kS).ok());
  std::string s = table.ToString();
  EXPECT_NE(s.find("R1(S)"), std::string::npos);
}

}  // namespace
}  // namespace twbg::lock
