// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_table.h"

#include <gtest/gtest.h>

namespace twbg::lock {
namespace {

using enum LockMode;

TEST(LockTableTest, GetOrCreateIsIdempotent) {
  LockTable table;
  ResourceState& a = table.GetOrCreate(7);
  ResourceState& b = table.GetOrCreate(7);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(a.rid(), 7u);
}

TEST(LockTableTest, FindReturnsNullForUnknown) {
  LockTable table;
  EXPECT_EQ(table.Find(3), nullptr);
  table.GetOrCreate(3);
  EXPECT_NE(table.Find(3), nullptr);
  EXPECT_NE(table.FindMutable(3), nullptr);
}

TEST(LockTableTest, EraseIfFreeDropsOnlyFreeResources) {
  LockTable table;
  ResourceState& r = table.GetOrCreate(1);
  ASSERT_TRUE(r.Request(1, kS).ok());
  table.EraseIfFree(1);
  EXPECT_NE(table.Find(1), nullptr);  // held: kept
  table.GetOrCreate(2);
  table.EraseIfFree(2);
  EXPECT_EQ(table.Find(2), nullptr);  // free: dropped
}

TEST(LockTableTest, IterationIsOrderedByResourceId) {
  LockTable table;
  table.GetOrCreate(5);
  table.GetOrCreate(1);
  table.GetOrCreate(3);
  std::vector<ResourceId> seen;
  for (const auto& [rid, state] : table) seen.push_back(rid);
  EXPECT_EQ(seen, (std::vector<ResourceId>{1, 3, 5}));
}

TEST(LockTableTest, CopyIsDeep) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kX).ok());
  LockTable copy = table;
  copy.FindMutable(1)->Remove(1);
  EXPECT_TRUE(copy.Find(1)->IsFree());
  EXPECT_FALSE(table.Find(1)->IsFree());
}

TEST(LockTableTest, CheckInvariantsAggregates) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kS).ok());
  ASSERT_TRUE(table.GetOrCreate(2).Request(2, kX).ok());
  EXPECT_TRUE(table.CheckInvariants().ok());
}

TEST(LockTableTest, ToStringListsResources) {
  LockTable table;
  ASSERT_TRUE(table.GetOrCreate(1).Request(1, kS).ok());
  std::string s = table.ToString();
  EXPECT_NE(s.find("R1(S)"), std::string::npos);
}

}  // namespace
}  // namespace twbg::lock
