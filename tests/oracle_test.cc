// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the reduction-based deadlock oracle (Definition 1), including
// the headline Theorem 1 property: cycle in H/W-TWBG <=> deadlock.

#include "core/oracle.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/examples_catalog.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

TEST(OracleTest, EmptyTableIsNotDeadlocked) {
  lock::LockTable table;
  OracleResult r = AnalyzeByReduction(table);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.stuck.empty());
}

TEST(OracleTest, SimpleWaitIsNotDeadlock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(OracleTest, WaitChainAcrossResourcesIsNotDeadlock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());  // T2 waits on T1
  ASSERT_TRUE(lm.Acquire(3, 2, kX).ok());  // T3 waits on T2
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(OracleTest, ClassicTwoTransactionDeadlock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());  // T1 waits on T2
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());  // T2 waits on T1 -> deadlock
  OracleResult r = AnalyzeByReduction(lm.table());
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.stuck, (std::vector<lock::TransactionId>{1, 2}));
}

TEST(OracleTest, ConversionDeadlockDetected) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  OracleResult r = AnalyzeByReduction(lm.table());
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.stuck, (std::vector<lock::TransactionId>{1, 2}));
}

TEST(OracleTest, Example41StuckSetIncludesContagion) {
  lock::LockManager lm;
  BuildExample41(lm);
  OracleResult r = AnalyzeByReduction(lm.table());
  EXPECT_TRUE(r.deadlocked);
  // Every blocked transaction is stuck: the cycle members plus T4 queued
  // behind the deadlock.
  EXPECT_EQ(r.stuck, (std::vector<lock::TransactionId>{1, 2, 3, 4, 5, 6, 7,
                                                       8, 9}));
}

TEST(OracleTest, Example51StuckSet) {
  lock::LockManager lm;
  BuildExample51(lm);
  OracleResult r = AnalyzeByReduction(lm.table());
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.stuck, (std::vector<lock::TransactionId>{1, 2, 3}));
}

TEST(OracleTest, ReductionOrderDoesNotChangeTheResidue) {
  lock::LockManager lm;
  BuildExample41(lm);
  // Add some resolvable load around the deadlock.
  ASSERT_TRUE(lm.Acquire(10, 5, kX).ok());
  ASSERT_TRUE(lm.Acquire(11, 5, kS).ok());
  ASSERT_TRUE(lm.Acquire(12, 5, kS).ok());
  OracleResult baseline = AnalyzeByReduction(lm.table());
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    OracleResult shuffled = AnalyzeByReduction(lm.table(), &rng);
    EXPECT_EQ(shuffled.deadlocked, baseline.deadlocked);
    EXPECT_EQ(shuffled.stuck, baseline.stuck);
  }
}

TEST(OracleTest, OracleDoesNotMutateInput) {
  lock::LockManager lm;
  BuildExample51(lm);
  std::string before = lm.table().ToString();
  AnalyzeByReduction(lm.table());
  EXPECT_EQ(lm.table().ToString(), before);
}

// Theorem 1: there is a cycle in H/W-TWBG iff the system is deadlocked.
// Property-tested over thousands of random lock tables.
class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, CycleIffDeadlock) {
  common::Rng rng(GetParam());
  for (int round = 0; round < 150; ++round) {
    lock::LockManager lm;
    const int txns = 2 + static_cast<int>(rng.NextBelow(9));
    const int resources = 1 + static_cast<int>(rng.NextBelow(4));
    const int ops = 10 + static_cast<int>(rng.NextBelow(90));
    for (int op = 0; op < ops; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, resources));
      lock::LockMode mode = lock::kRealModes[rng.NextBelow(5)];
      (void)lm.Acquire(tid, rid, mode);
    }
    const bool has_cycle = HwTwbg::Build(lm.table()).HasCycle();
    const bool deadlocked = AnalyzeByReduction(lm.table()).deadlocked;
    ASSERT_EQ(has_cycle, deadlocked)
        << "seed=" << GetParam() << " round=" << round << "\n"
        << lm.table().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace twbg::core
