// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// FlatMap unit suite: lookup/insert/erase correctness, rehash behaviour,
// the swap-with-last erase-during-iterate contract, and determinism of
// the dense iteration order.

#include "common/flat_map.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace twbg::common {
namespace {

TEST(FlatMapTest, EmptyMapFindsNothing) {
  FlatMap<uint32_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_FALSE(map.Contains(7));
  EXPECT_FALSE(map.Erase(7));
}

TEST(FlatMapTest, InsertFindRoundTrip) {
  FlatMap<uint32_t, std::string> map;
  auto [a, inserted_a] = map.TryEmplace(1);
  EXPECT_TRUE(inserted_a);
  *a = "one";
  auto [a2, inserted_again] = map.TryEmplace(1);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*a2, "one");

  map[2] = "two";
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(2), nullptr);
  EXPECT_EQ(*map.Find(2), "two");
  EXPECT_EQ(map.Find(3), nullptr);
}

TEST(FlatMapTest, EraseSwapsLastIntoHole) {
  FlatMap<uint32_t, int> map;
  for (uint32_t k = 0; k < 4; ++k) map[k] = static_cast<int>(k * 10);
  // Dense order is insertion order: 0, 1, 2, 3.
  ASSERT_EQ(map.entries()[0].key, 0u);
  EXPECT_TRUE(map.Erase(1));
  // The documented contract: the last entry (key 3) fills the hole.
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.entries()[1].key, 3u);
  EXPECT_EQ(map.entries()[1].value, 30);
  // Everything still resolves.
  EXPECT_EQ(*map.Find(0), 0);
  EXPECT_EQ(*map.Find(2), 20);
  EXPECT_EQ(*map.Find(3), 30);
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatMapTest, EraseLastEntryIsPlainPop) {
  FlatMap<uint32_t, int> map;
  map[1] = 10;
  map[2] = 20;
  EXPECT_TRUE(map.Erase(2));
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.entries()[0].key, 1u);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, RehashPreservesAllEntries) {
  FlatMap<uint32_t, uint32_t> map;
  constexpr uint32_t kCount = 10000;  // forces many rehashes from 16 up
  for (uint32_t k = 0; k < kCount; ++k) map[k] = k ^ 0xabcd;
  EXPECT_EQ(map.size(), kCount);
  for (uint32_t k = 0; k < kCount; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k ^ 0xabcd);
  }
  EXPECT_EQ(map.Find(kCount), nullptr);
}

TEST(FlatMapTest, ReserveAvoidsRehashDuringFill) {
  FlatMap<uint32_t, int> map;
  map.Reserve(1000);
  for (uint32_t k = 0; k < 1000; ++k) map[k] = 1;
  EXPECT_EQ(map.size(), 1000u);
  for (uint32_t k = 0; k < 1000; ++k) ASSERT_TRUE(map.Contains(k));
}

TEST(FlatMapTest, MixedChurnAgainstStdMap) {
  FlatMap<uint32_t, uint64_t> map;
  std::map<uint32_t, uint64_t> oracle;
  Rng rng(0xf1a7);
  for (int step = 0; step < 50000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBelow(512));
    switch (rng.NextBelow(3)) {
      case 0: {
        const uint64_t value = rng.NextU64();
        map[key] = value;
        oracle[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(map.Erase(key), oracle.erase(key) > 0);
        break;
      }
      default: {
        const uint64_t* found = map.Find(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  // Final sweep: identical contents.
  std::map<uint32_t, uint64_t> drained;
  for (const auto& entry : map) drained[entry.key] = entry.value;
  EXPECT_EQ(drained, oracle);
}

TEST(FlatMapTest, IterationOrderIsDeterministic) {
  // Two maps fed the identical operation sequence iterate identically —
  // the property the lock table's ordered seam and the differential
  // suites build on.
  FlatMap<uint32_t, int> a;
  FlatMap<uint32_t, int> b;
  auto feed = [](FlatMap<uint32_t, int>& m) {
    Rng rng(0xdead);
    for (int step = 0; step < 5000; ++step) {
      const uint32_t key = static_cast<uint32_t>(rng.NextBelow(256));
      if (rng.NextBelow(3) == 0) {
        m.Erase(key);
      } else {
        m[key] = step;
      }
    }
  };
  feed(a);
  feed(b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].key, b.entries()[i].key);
    EXPECT_EQ(a.entries()[i].value, b.entries()[i].value);
  }
}

TEST(FlatMapTest, CollectThenEraseDuringIteration) {
  // The documented in-loop erase pattern: collect keys first, then erase.
  FlatMap<uint32_t, int> map;
  for (uint32_t k = 0; k < 100; ++k) map[k] = static_cast<int>(k);
  std::vector<uint32_t> evens;
  for (const auto& entry : map) {
    if (entry.key % 2 == 0) evens.push_back(entry.key);
  }
  for (uint32_t k : evens) EXPECT_TRUE(map.Erase(k));
  EXPECT_EQ(map.size(), 50u);
  for (uint32_t k = 0; k < 100; ++k) {
    EXPECT_EQ(map.Contains(k), k % 2 == 1) << k;
  }
}

TEST(FlatMapTest, ClearResetsButKeepsWorking) {
  FlatMap<uint32_t, int> map;
  for (uint32_t k = 0; k < 100; ++k) map[k] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 7;
  EXPECT_EQ(*map.Find(5), 7);
}

}  // namespace
}  // namespace twbg::common
