// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace twbg::obs {
namespace {

constexpr uint64_t kMax64 = std::numeric_limits<uint64_t>::max();

TEST(LogHistogramTest, BucketIndexEdges) {
  EXPECT_EQ(LogHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LogHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LogHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LogHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LogHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LogHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LogHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LogHistogram::BucketIndex(uint64_t{1} << 63), 64u);
  EXPECT_EQ(LogHistogram::BucketIndex(kMax64), 64u);
  // Every index fits the fixed array — Add can never run off the end.
  EXPECT_LT(LogHistogram::BucketIndex(kMax64), LogHistogram::kNumBuckets);
}

TEST(LogHistogramTest, BucketBoundsAreConsistent) {
  EXPECT_EQ(LogHistogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(64), uint64_t{1} << 63);
  EXPECT_EQ(LogHistogram::BucketUpperBound(64), kMax64);
  // Every value lies inside its own bucket's bounds.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{5}, uint64_t{1000},
                     uint64_t{1} << 40, kMax64}) {
    const size_t i = LogHistogram::BucketIndex(v);
    EXPECT_GE(v, LogHistogram::BucketLowerBound(i)) << v;
    if (i < LogHistogram::kNumBuckets - 1) {
      EXPECT_LT(v, LogHistogram::BucketUpperBound(i)) << v;
    }
  }
}

TEST(LogHistogramTest, ZeroSample) {
  LogHistogram h;
  h.Add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(LogHistogramTest, MaxSampleDoesNotOverflow) {
  LogHistogram h;
  h.Add(kMax64);
  h.Add(kMax64);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), kMax64);
  EXPECT_EQ(h.buckets()[64], 2u);
  // The sum is tracked in double precision, so two max samples cannot
  // wrap around.
  EXPECT_NEAR(h.sum(), 2.0 * static_cast<double>(kMax64),
              1e4 * static_cast<double>(kMax64) * 1e-15);
  EXPECT_GT(h.mean(), static_cast<double>(kMax64) / 2.0);
}

TEST(LogHistogramTest, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Summary(), "n=0");
}

TEST(LogHistogramTest, PercentilesTrackUniformData) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 100.0);
  // Log-bucket interpolation has at worst one-bucket (2x) error.
  const double p50 = h.Percentile(50.0);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  const double p95 = h.Percentile(95.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 100.0);
  EXPECT_LE(p50, p95);
}

TEST(LogHistogramTest, SingleValueReportsExactPercentiles) {
  LogHistogram h;
  h.Add(42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 42.0);
}

TEST(LogHistogramTest, AddDoubleClampsAndRounds) {
  LogHistogram h;
  h.AddDouble(-5.0);                  // clamps to 0
  h.AddDouble(std::nan(""));          // clamps to 0
  h.AddDouble(2.6);                   // rounds to 3
  h.AddDouble(1e30);                  // clamps into the top bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[LogHistogram::BucketIndex(3)], 1u);
  EXPECT_EQ(h.buckets()[64], 1u);
  EXPECT_EQ(h.max(), kMax64);
}

TEST(LogHistogramTest, MergeCombinesAggregates) {
  LogHistogram a;
  LogHistogram b;
  a.Add(1);
  a.Add(2);
  b.Add(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_DOUBLE_EQ(a.sum(), 103.0);
  // Merging an empty histogram changes nothing.
  LogHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(LogHistogramTest, ResetClearsEverything) {
  LogHistogram h;
  h.Add(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Summary(), "n=0");
}

TEST(LogHistogramTest, SummaryMentionsTheAggregates) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Add(v);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=10"), std::string::npos) << s;
  EXPECT_NE(s.find("max=10"), std::string::npos) << s;
}

}  // namespace
}  // namespace twbg::obs
