// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the H/W-TWBG graph view: cycle enumeration on the paper's
// examples, TRRP decomposition, and the Lemma 1-3 structural properties on
// randomized lock tables.

#include "core/twbg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/examples_catalog.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

std::set<std::set<lock::TransactionId>> CycleSets(
    const std::vector<std::vector<lock::TransactionId>>& cycles) {
  std::set<std::set<lock::TransactionId>> out;
  for (const auto& c : cycles) out.insert({c.begin(), c.end()});
  return out;
}

TEST(HwTwbgTest, Example41HasExactlyFourCycles) {
  lock::LockManager lm;
  BuildExample41(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  EXPECT_TRUE(graph.HasCycle());
  auto cycles = graph.ElementaryCycles();
  EXPECT_EQ(cycles.size(), 4u);  // "There are four cycles in Figure 4.1."
  EXPECT_EQ(CycleSets(cycles),
            (std::set<std::set<lock::TransactionId>>{
                {1, 2, 3, 5, 6, 7, 8, 9},
                {1, 3, 5, 6, 7, 8, 9},
                {2, 3, 5, 6, 7, 8, 9},
                {3, 6, 7, 8, 9}}));
}

TEST(HwTwbgTest, Example41NodesAndEdges) {
  lock::LockManager lm;
  BuildExample41(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  EXPECT_EQ(graph.nodes().size(), 9u);
  EXPECT_EQ(graph.edges().size(), 12u);
  // Spot-check labels.
  const TwbgEdge* h = graph.FindEdge(3, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->IsH());
  const TwbgEdge* w = graph.FindEdge(9, 3);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->IsW());
  EXPECT_EQ(graph.FindEdge(4, 1), nullptr);
}

TEST(HwTwbgTest, Example41TrrpDecompositionOfMainCycle) {
  lock::LockManager lm;
  BuildExample41(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  // The paper's four-TRRP cycle: (T1,T2) (T2,T5,T6,T7) (T7,T8,T9,T3)
  // (T3,T1).
  Result<std::vector<Trrp>> trrps =
      graph.DecomposeCycle({1, 2, 5, 6, 7, 8, 9, 3});
  ASSERT_TRUE(trrps.ok()) << trrps.status().ToString();
  ASSERT_EQ(trrps->size(), 4u);
  EXPECT_EQ((*trrps)[0].nodes, (std::vector<lock::TransactionId>{1, 2}));
  EXPECT_EQ((*trrps)[0].rid, kR1);
  EXPECT_EQ((*trrps)[1].nodes,
            (std::vector<lock::TransactionId>{2, 5, 6, 7}));
  EXPECT_EQ((*trrps)[1].rid, kR1);
  EXPECT_EQ((*trrps)[2].nodes,
            (std::vector<lock::TransactionId>{7, 8, 9, 3}));
  EXPECT_EQ((*trrps)[2].rid, kR2);
  EXPECT_EQ((*trrps)[3].nodes, (std::vector<lock::TransactionId>{3, 1}));
  EXPECT_EQ((*trrps)[3].rid, kR1);
}

TEST(HwTwbgTest, DecomposeRotatesToHEdgeStart) {
  lock::LockManager lm;
  BuildExample41(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  // Same cycle given starting mid-TRRP (at T5): decomposition must agree
  // up to rotation of the TRRP list.
  Result<std::vector<Trrp>> trrps =
      graph.DecomposeCycle({5, 6, 7, 8, 9, 3, 1, 2});
  ASSERT_TRUE(trrps.ok());
  ASSERT_EQ(trrps->size(), 4u);
  // First H edge at or after T5 is T7->T8.
  EXPECT_EQ((*trrps)[0].nodes,
            (std::vector<lock::TransactionId>{7, 8, 9, 3}));
}

TEST(HwTwbgTest, DecomposeRejectsNonCycle) {
  lock::LockManager lm;
  BuildExample41(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  EXPECT_FALSE(graph.DecomposeCycle({1, 5, 9}).ok());
  EXPECT_FALSE(graph.DecomposeCycle({1}).ok());
}

TEST(HwTwbgTest, Example51HasTwoCycles) {
  lock::LockManager lm;
  BuildExample51(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  auto cycles = graph.ElementaryCycles();
  EXPECT_EQ(CycleSets(cycles), (std::set<std::set<lock::TransactionId>>{
                                   {1, 2}, {1, 2, 3}}));
  // Lemma 3: both cycles decompose into >= 2 TRRPs.
  for (const auto& cycle : cycles) {
    auto trrps = graph.DecomposeCycle(cycle);
    ASSERT_TRUE(trrps.ok());
    EXPECT_GE(trrps->size(), 2u);
  }
}

TEST(HwTwbgTest, AcyclicWhenNoDeadlock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  HwTwbg graph = HwTwbg::Build(lm.table());
  EXPECT_FALSE(graph.HasCycle());
  EXPECT_TRUE(graph.ElementaryCycles().empty());
}

TEST(HwTwbgTest, DotExportMentionsAllEdges) {
  lock::LockManager lm;
  BuildExample51(lm);
  HwTwbg graph = HwTwbg::Build(lm.table());
  std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("T1 -> T2"), std::string::npos);
  EXPECT_NE(dot.find("T2 -> T1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // W edges
}

// Structural properties (Lemmas 1-3) on randomized lock tables.
class TwbgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwbgPropertyTest, LemmasHoldOnRandomTables) {
  common::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    lock::LockManager lm;
    const int txns = 2 + static_cast<int>(rng.NextBelow(10));
    for (int op = 0; op < 80; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, 4));
      lock::LockMode mode = lock::kRealModes[rng.NextBelow(5)];
      (void)lm.Acquire(tid, rid, mode);
    }
    HwTwbg graph = HwTwbg::Build(lm.table());
    for (const auto& cycle : graph.ElementaryCycles()) {
      // Lemma 1: at least one H edge.
      size_t h_edges = 0;
      for (size_t i = 0; i < cycle.size(); ++i) {
        const TwbgEdge* e =
            graph.FindEdge(cycle[i], cycle[(i + 1) % cycle.size()]);
        ASSERT_NE(e, nullptr);
        h_edges += e->IsH();
      }
      EXPECT_GE(h_edges, 1u);
      // Lemmas 2 and 3: >= 2 TRRPs (H edges and TRRPs are in bijection).
      EXPECT_GE(h_edges, 2u);
      auto trrps = graph.DecomposeCycle(cycle);
      ASSERT_TRUE(trrps.ok());
      EXPECT_EQ(trrps->size(), h_edges);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwbgPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace twbg::core
