// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Causal span tracing: tracer semantics (obs/span.h), the JSONL
// round-trip, the Perfetto exporter, the blocked-time profiler and the
// scheduler-input estimator (obs/span_sinks.h), plus the LockManager
// wait-span integration.

#include "obs/span.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "lock/lock_manager.h"
#include "obs/span_sinks.h"

namespace twbg::obs {
namespace {

using enum lock::LockMode;

// Temp-file path helper (mirrors obs_test.cc's idiom).
std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// -- Tracer semantics -----------------------------------------------------

TEST(SpanTracerTest, InactiveTracerIsInert) {
  SpanTracer tracer;
  EXPECT_FALSE(tracer.active());
  EXPECT_FALSE(Tracing(&tracer));
  EXPECT_FALSE(Tracing(nullptr));
  // Every operation is a no-op: nothing opens, nothing is emitted.
  tracer.OpenTxn(1, "fresh");
  tracer.OpenWait(1, 7, 10, kX);
  EXPECT_EQ(tracer.Open(SpanKind::kPass), 0u);
  tracer.CloseWait(1, WaitOutcome::kGranted);
  tracer.CloseTxn(1);
  tracer.Close(0);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.dropped_closes(), 0u);
}

TEST(SpanTracerTest, SinksSeeSpansOnlyAtClose) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  EXPECT_TRUE(Tracing(&tracer));
  tracer.set_time(100);
  const uint64_t pass = tracer.Open(SpanKind::kPass);
  ASSERT_NE(pass, 0u);
  EXPECT_TRUE(sink.spans().empty());  // still open: not delivered
  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.set_time(250);
  tracer.Close(pass, /*a=*/3, /*b=*/42);
  ASSERT_EQ(sink.spans().size(), 1u);
  const Span& span = sink.spans()[0];
  EXPECT_EQ(span.id, pass);
  EXPECT_EQ(span.kind, SpanKind::kPass);
  EXPECT_EQ(span.open_ns, 100u);
  EXPECT_EQ(span.close_ns, 250u);
  EXPECT_EQ(span.duration(), 150u);
  EXPECT_EQ(span.a, 3u);
  EXPECT_EQ(span.b, 42u);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.emitted(), 1u);
}

TEST(SpanTracerTest, CurrentPassTracksOpenPassSpan) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  EXPECT_EQ(tracer.current_pass(), 0u);
  const uint64_t pass = tracer.Open(SpanKind::kPass);
  EXPECT_EQ(tracer.current_pass(), pass);
  // Children opened during the pass can parent on it.
  const uint64_t step = tracer.Open(SpanKind::kStep1, 0, tracer.current_pass());
  tracer.Close(step);
  EXPECT_EQ(sink.spans()[0].parent, pass);
  tracer.Close(pass);
  EXPECT_EQ(tracer.current_pass(), 0u);
}

TEST(SpanTracerTest, UnknownCloseCountsAsDropped) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  tracer.Close(0);  // id 0: the inactive-open idiom, never counted
  EXPECT_EQ(tracer.dropped_closes(), 0u);
  tracer.Close(9999);
  EXPECT_EQ(tracer.dropped_closes(), 1u);
  EXPECT_TRUE(sink.spans().empty());
}

TEST(SpanTracerTest, TxnSpanParentingAndStaleReplacement) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  tracer.set_time(10);
  tracer.OpenTxn(7, "fresh");
  const uint64_t txn = tracer.TxnSpan(7);
  ASSERT_NE(txn, 0u);
  tracer.OpenWait(7, /*corr=*/55, /*rid=*/3, kS);
  tracer.set_time(20);
  tracer.CloseWait(7, WaitOutcome::kGranted);
  ASSERT_EQ(sink.spans().size(), 1u);
  const Span& wait = sink.spans()[0];
  EXPECT_EQ(wait.kind, SpanKind::kWait);
  EXPECT_EQ(wait.parent, txn);  // wait parented under the open txn span
  EXPECT_EQ(wait.corr, 55u);
  EXPECT_EQ(wait.rid, 3u);
  EXPECT_EQ(wait.mode, kS);
  EXPECT_FALSE(wait.aborted);
  // Re-opening the same tid replaces the stale span rather than leaking.
  tracer.OpenTxn(7, "restart");
  EXPECT_NE(tracer.TxnSpan(7), txn);
  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.CloseTxn(7, /*aborted=*/true);
  EXPECT_EQ(sink.spans().back().label, "restart");
  EXPECT_TRUE(sink.spans().back().aborted);
  // Closing a tid with no open span is a silent no-op.
  tracer.CloseTxn(7);
  EXPECT_EQ(sink.spans().size(), 2u);
}

TEST(SpanTracerTest, WaitOutcomesFoldIntoAborted) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  tracer.OpenWait(1, 1, 10, kX);
  tracer.CloseWait(1, WaitOutcome::kGranted);
  tracer.OpenWait(2, 2, 10, kX);
  tracer.CloseWait(2, WaitOutcome::kAborted);
  tracer.OpenWait(3, 3, 10, kX);
  tracer.CloseWait(3, WaitOutcome::kCancelled);
  // A close with no open wait (tracer attached mid-wait) is a no-op.
  tracer.CloseWait(4, WaitOutcome::kGranted);
  ASSERT_EQ(sink.spans().size(), 3u);
  EXPECT_FALSE(sink.spans()[0].aborted);
  EXPECT_TRUE(sink.spans()[1].aborted);
  EXPECT_TRUE(sink.spans()[2].aborted);
}

TEST(SpanTracerTest, SetContextAnnotatesOpenSpan) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  const uint64_t res = tracer.Open(SpanKind::kResolution);
  tracer.SetContext(res, /*tid=*/9, /*rid=*/4, kX);
  tracer.SetContext(0, 1, 1);     // id 0: no-op
  tracer.SetContext(9999, 1, 1);  // unknown: no-op
  tracer.Close(res, /*a=*/3, /*b=*/1, "TDR-2");
  ASSERT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.spans()[0].tid, 9u);
  EXPECT_EQ(sink.spans()[0].rid, 4u);
  EXPECT_EQ(sink.spans()[0].mode, kX);
  EXPECT_EQ(sink.spans()[0].label, "TDR-2");
}

TEST(SpanTracerTest, KindNamesRoundTrip) {
  for (size_t k = 0; k < kNumSpanKinds; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const std::optional<SpanKind> parsed = SpanKindFromName(ToString(kind));
    ASSERT_TRUE(parsed.has_value()) << ToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(SpanKindFromName("no-such-kind").has_value());
}

// -- LockManager integration ----------------------------------------------

TEST(SpanLockManagerTest, BlockedAcquireOpensWaitSpan) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  lock::LockManager lm;
  lm.set_span_tracer(&tracer);
  tracer.OpenTxn(1, "a");
  tracer.OpenTxn(2, "b");
  ASSERT_TRUE(lm.Acquire(1, 10, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 10, kS).ok());  // blocks
  EXPECT_EQ(sink.Count(SpanKind::kWait), 0u);  // still open
  lm.ReleaseAll(1);  // grants T2
  ASSERT_EQ(sink.Count(SpanKind::kWait), 1u);
  const Span wait = sink.Filter(SpanKind::kWait)[0];
  EXPECT_EQ(wait.tid, 2u);
  EXPECT_EQ(wait.rid, 10u);
  EXPECT_EQ(wait.mode, kS);
  EXPECT_FALSE(wait.aborted);
  // The span's corr is the PR-3 wait-span id the lock manager assigned.
  EXPECT_EQ(wait.corr, lm.Info(2)->wait_span);
  EXPECT_EQ(wait.parent, tracer.TxnSpan(2));
}

TEST(SpanLockManagerTest, AbortAndCancelCloseWaitsAborted) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  lock::LockManager lm;
  lm.set_span_tracer(&tracer);
  ASSERT_TRUE(lm.Acquire(1, 10, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 10, kS).ok());  // blocks
  ASSERT_TRUE(lm.Acquire(3, 10, kS).ok());  // blocks
  lm.ReleaseAll(2);  // aborting the waiter closes its own wait span
  ASSERT_TRUE(lm.CancelWait(3).ok());
  ASSERT_EQ(sink.Count(SpanKind::kWait), 2u);
  for (const Span& wait : sink.Filter(SpanKind::kWait)) {
    EXPECT_TRUE(wait.aborted) << "tid " << wait.tid;
  }
}

// -- JSONL round-trip -----------------------------------------------------

Span MakeSpan() {
  Span span;
  span.id = 12;
  span.parent = 4;
  span.kind = SpanKind::kWait;
  span.tid = 7;
  span.rid = 3;
  span.mode = kIX;
  span.track = 2;
  span.corr = 99;
  span.open_ns = 1000;
  span.close_ns = 1750;
  span.a = 5;
  span.b = 6;
  span.aborted = true;
  span.label = "needs \"escaping\"";
  return span;
}

void ExpectSpanEq(const Span& got, const Span& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.parent, want.parent);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.tid, want.tid);
  EXPECT_EQ(got.rid, want.rid);
  EXPECT_EQ(got.mode, want.mode);
  EXPECT_EQ(got.track, want.track);
  EXPECT_EQ(got.corr, want.corr);
  EXPECT_EQ(got.open_ns, want.open_ns);
  EXPECT_EQ(got.close_ns, want.close_ns);
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.aborted, want.aborted);
  EXPECT_EQ(got.label, want.label);
}

TEST(SpanJsonTest, RoundTripsAllFields) {
  const Span span = MakeSpan();
  Result<Span> parsed = ParseSpanLine(SpanToJson(span));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSpanEq(*parsed, span);
}

TEST(SpanJsonTest, RejectsWrongSchemaVersionAndGarbage) {
  EXPECT_FALSE(ParseSpanLine("not json").ok());
  EXPECT_FALSE(ParseSpanLine("{\"id\":1}").ok());  // missing schema_version
  std::string line = SpanToJson(MakeSpan());
  const std::string needle = "\"schema_version\":1";
  line.replace(line.find(needle), needle.size(), "\"schema_version\":99");
  EXPECT_FALSE(ParseSpanLine(line).ok());
}

TEST(SpanJsonTest, IgnoresUnknownMembers) {
  std::string line = SpanToJson(MakeSpan());
  line.insert(1, "\"future_member\":17,\"future_text\":\"x\",");
  Result<Span> parsed = ParseSpanLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSpanEq(*parsed, MakeSpan());
}

TEST(SpanJsonlSinkTest, WritesFileReadSpanFileLoads) {
  const std::string path = TempPath("span_sink_roundtrip.jsonl");
  {
    Result<std::unique_ptr<SpanJsonlSink>> sink = SpanJsonlSink::Open(path);
    ASSERT_TRUE(sink.ok());
    SpanTracer tracer;
    tracer.Subscribe(sink->get());
    tracer.set_time(1);
    tracer.OpenTxn(1, "fresh");
    const uint64_t pass = tracer.Open(SpanKind::kPass);
    tracer.set_time(5);
    tracer.Close(pass, 2, 100);
    tracer.CloseTxn(1);
    (*sink)->Flush();
    EXPECT_EQ((*sink)->lines_written(), 2u);
    EXPECT_EQ((*sink)->write_errors(), 0u);
  }
  Result<std::vector<Span>> spans = ReadSpanFile(path);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0].kind, SpanKind::kPass);
  EXPECT_EQ((*spans)[1].kind, SpanKind::kTxn);
  EXPECT_EQ((*spans)[1].label, "fresh");
  std::remove(path.c_str());
}

TEST(SpanJsonlSinkTest, ReadSpanFileNamesBadLine) {
  const std::string path = TempPath("span_sink_badline.jsonl");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(SpanToJson(MakeSpan()).c_str(), f);
  std::fputs("\n\ngarbage\n", f);  // empty lines are skipped, garbage is not
  std::fclose(f);
  Result<std::vector<Span>> spans = ReadSpanFile(path);
  ASSERT_FALSE(spans.ok());
  EXPECT_NE(spans.status().ToString().find(":3:"), std::string::npos)
      << spans.status().ToString();
  std::remove(path.c_str());
}

// -- Perfetto exporter ----------------------------------------------------

TEST(PerfettoExportTest, EmitsLaneMetadataAndCompleteEvents) {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  tracer.set_time(2000);
  tracer.OpenTxn(7, "fresh");
  const uint64_t pass = tracer.Open(SpanKind::kPass);
  const uint64_t pub = tracer.Open(SpanKind::kPublish, /*track=*/3, pass);
  tracer.set_time(4000);
  tracer.Close(pub, 1, 0);
  tracer.Close(pass, 0, 0);
  tracer.CloseTxn(7);
  const std::string json = ExportPerfettoJson(sink.spans());
  // Lane metadata: detector (tid 1), shard 3 (tid 103), txn 7 (tid 1007).
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":1,\"args\":{\"name\":\"detector\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":103,\"args\":{\"name\":\"shard 3\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":1007,\"args\":{\"name\":\"T7\"}"),
            std::string::npos);
  // Complete events with microsecond ts/dur: 2000 ns -> 2.000 us.
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":2.000,\"dur\":2.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"publish shard 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"txn T7 [fresh]\""), std::string::npos);
  // The document parses as the Chrome trace-event shape.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
}

// -- Blocked-time profiler ------------------------------------------------

// Builds the profiler's input: two classes waiting on two resources.
std::vector<Span> ProfileFixture() {
  SpanTracer tracer;
  SpanCollectorSink sink;
  tracer.Subscribe(&sink);
  tracer.set_time(0);
  tracer.OpenTxn(1, "oltp");
  tracer.OpenTxn(2, "oltp");
  tracer.OpenTxn(3, "batch");
  tracer.OpenWait(1, 1, 10, kX);
  tracer.OpenWait(2, 2, 10, kX);
  tracer.OpenWait(3, 3, 20, kS);
  tracer.OpenWait(4, 4, 20, kS);  // no open txn span: "unclassified"
  tracer.set_time(100);
  tracer.CloseWait(1, WaitOutcome::kGranted);   // oltp R10/X: 100
  tracer.set_time(400);
  tracer.CloseWait(2, WaitOutcome::kAborted);   // oltp R10/X: 400
  tracer.set_time(150);  // manual clock: profile uses recorded stamps
  tracer.CloseWait(3, WaitOutcome::kGranted);   // batch R20/S: 150
  tracer.set_time(50);
  tracer.CloseWait(4, WaitOutcome::kGranted);   // unclassified R20/S: 50
  tracer.CloseTxn(1);
  tracer.CloseTxn(2);
  tracer.CloseTxn(3);
  return sink.spans();
}

TEST(BlockedProfileTest, FoldsWaitsByResourceModeClass) {
  const BlockedProfile profile = BuildBlockedProfile(ProfileFixture());
  EXPECT_EQ(profile.total_waits, 4u);
  EXPECT_EQ(profile.total_blocked_ns, 100u + 400u + 150u + 50u);
  ASSERT_EQ(profile.rows.size(), 3u);
  // Descending total_ns: oltp 500, batch 150, unclassified 50.
  EXPECT_EQ(profile.rows[0].txn_class, "oltp");
  EXPECT_EQ(profile.rows[0].rid, 10u);
  EXPECT_EQ(profile.rows[0].mode, kX);
  EXPECT_EQ(profile.rows[0].waits, 2u);
  EXPECT_EQ(profile.rows[0].total_ns, 500u);
  EXPECT_EQ(profile.rows[0].max_ns, 400u);
  EXPECT_EQ(profile.rows[0].aborted, 1u);
  EXPECT_EQ(profile.rows[1].txn_class, "batch");
  EXPECT_EQ(profile.rows[1].total_ns, 150u);
  EXPECT_EQ(profile.rows[2].txn_class, "unclassified");
  EXPECT_EQ(profile.rows[2].total_ns, 50u);
}

TEST(BlockedProfileTest, RendersFoldedStacksAndTable) {
  const BlockedProfile profile = BuildBlockedProfile(ProfileFixture());
  const std::string folded = FoldedStacks(profile);
  EXPECT_EQ(folded,
            "R10;X;oltp 500\n"
            "R20;S;batch 150\n"
            "R20;S;unclassified 50\n");
  const std::string table = ProfileTable(profile);
  EXPECT_NE(table.find("total: 4 wait(s), 700 ns blocked"),
            std::string::npos);
  EXPECT_NE(table.find("oltp"), std::string::npos);
}

TEST(BlockedProfileTest, EmptyInputIsEmptyProfile) {
  const BlockedProfile profile = BuildBlockedProfile({});
  EXPECT_TRUE(profile.rows.empty());
  EXPECT_EQ(profile.total_waits, 0u);
  EXPECT_EQ(FoldedStacks(profile), "");
}

// -- Scheduler-input estimator --------------------------------------------

TEST(SpanEstimatorTest, WindowsAccumulatePassAndWaitCounters) {
  SpanTracer tracer;
  SpanEstimator estimator;
  tracer.Subscribe(&estimator);
  tracer.set_time(0);
  estimator.Reset(tracer.now());

  // Window 1 [0, 1000): one pass resolving 2 cycles at cost 70, one wait
  // of 300 clock units, two resolution spans.
  tracer.OpenWait(1, 1, 10, kX);
  const uint64_t pass = tracer.Open(SpanKind::kPass);
  const uint64_t r1 = tracer.Open(SpanKind::kResolution, 0, pass);
  const uint64_t r2 = tracer.Open(SpanKind::kResolution, 0, pass);
  tracer.set_time(200);
  tracer.Close(r1, 2, 0);
  tracer.Close(r2, 3, 1);
  tracer.set_time(250);
  tracer.Close(pass, /*cycles=*/2, /*cost=*/70);
  tracer.set_time(300);
  tracer.CloseWait(1, WaitOutcome::kGranted);
  tracer.set_time(1000);
  SpanSampleStats stats = estimator.Take(tracer.now());
  EXPECT_EQ(stats.window_ns, 1000u);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.pass_ns, 250u);
  EXPECT_EQ(stats.pass_cost, 70u);
  EXPECT_EQ(stats.cycles, 2u);
  EXPECT_EQ(stats.resolutions, 2u);
  EXPECT_EQ(stats.waits_closed, 1u);
  EXPECT_EQ(stats.blocked_ns, 300u);
  EXPECT_DOUBLE_EQ(stats.avg_blocked(), 0.3);

  // Window 2 [1000, 2000): empty — Take() rolled the window over.
  tracer.set_time(2000);
  stats = estimator.Take(tracer.now());
  EXPECT_EQ(stats.window_ns, 1000u);
  EXPECT_EQ(stats.passes, 0u);
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_blocked(), 0.0);
}

TEST(SpanEstimatorTest, FirstWindowAnchorsAtFirstSpanWithoutReset) {
  SpanTracer tracer;
  SpanEstimator estimator;
  tracer.Subscribe(&estimator);
  tracer.set_time(500);
  tracer.OpenWait(1, 1, 10, kX);
  tracer.set_time(700);
  tracer.CloseWait(1, WaitOutcome::kGranted);
  tracer.set_time(900);
  const SpanSampleStats stats = estimator.Take(tracer.now());
  // Anchored at the first span's open (500), not at 0.
  EXPECT_EQ(stats.window_ns, 400u);
  EXPECT_EQ(stats.blocked_ns, 200u);
  EXPECT_DOUBLE_EQ(stats.avg_blocked(), 0.5);
}

}  // namespace
}  // namespace twbg::obs
