// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the comparison detectors: each resolves what its model can
// see, and — crucially for the reproduction — the classic WFG and the
// single-edge ACD scheme demonstrably MISS the FIFO deadlock that
// H/W-TWBG was designed to capture.

#include <gtest/gtest.h>

#include "baselines/acd_detector.h"
#include "baselines/elmagarmid_detector.h"
#include "baselines/factory.h"
#include "baselines/hwtwbg_strategy.h"
#include "baselines/jiang_detector.h"
#include "baselines/timeout_resolver.h"
#include "baselines/wfg_detector.h"
#include "core/examples_catalog.h"
#include "core/oracle.h"

namespace twbg::baselines {
namespace {

using enum lock::LockMode;

void BuildClassicDeadlock(lock::LockManager& lm) {
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
}

TEST(WfgStrategyTest, ResolvesClassicDeadlock) {
  lock::LockManager lm;
  BuildClassicDeadlock(lm);
  core::CostTable costs;
  costs.Set(1, 5.0);
  costs.Set(2, 2.0);
  WfgStrategy wfg;
  StrategyOutcome outcome = wfg.OnPeriodic(lm, costs);
  EXPECT_EQ(outcome.cycles_found, 1u);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{2}));
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(WfgStrategyTest, MissesTheFifoDeadlock) {
  // The motivating scenario: holder-only wait-for edges cannot see T3's
  // FIFO wait behind T2 — WFG reports nothing, the oracle disagrees.
  lock::LockManager lm;
  core::BuildFifoDeadlock(lm);
  ASSERT_TRUE(core::AnalyzeByReduction(lm.table()).deadlocked);
  core::CostTable costs;
  WfgStrategy wfg;
  StrategyOutcome outcome = wfg.OnPeriodic(lm, costs);
  EXPECT_EQ(outcome.cycles_found, 0u);
  EXPECT_TRUE(outcome.aborted.empty());
  EXPECT_TRUE(core::AnalyzeByReduction(lm.table()).deadlocked);  // still!
  // ... while the paper's detector resolves it.
  HwTwbgPeriodicStrategy ours;
  StrategyOutcome resolved = ours.OnPeriodic(lm, costs);
  EXPECT_GE(resolved.cycles_found, 1u);
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(WfgStrategyTest, DetectsConversionDeadlockViaBlockedModes) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  core::CostTable costs;
  WfgStrategy wfg;
  StrategyOutcome outcome = wfg.OnPeriodic(lm, costs);
  EXPECT_EQ(outcome.cycles_found, 1u);
  EXPECT_EQ(outcome.aborted.size(), 1u);
}

TEST(AcdStrategyTest, ResolvesClassicDeadlock) {
  lock::LockManager lm;
  BuildClassicDeadlock(lm);
  core::CostTable costs;
  costs.Set(1, 1.0);
  costs.Set(2, 9.0);
  AcdStrategy acd;
  StrategyOutcome outcome = acd.OnPeriodic(lm, costs);
  EXPECT_EQ(outcome.cycles_found, 1u);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{1}));
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(AcdStrategyTest, MissesTheFifoDeadlock) {
  lock::LockManager lm;
  core::BuildFifoDeadlock(lm);
  core::CostTable costs;
  AcdStrategy acd;
  StrategyOutcome outcome = acd.OnPeriodic(lm, costs);
  EXPECT_TRUE(outcome.aborted.empty());
  EXPECT_TRUE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(AcdStrategyTest, RepresentativeCompressionCanDelayDetection) {
  // A deadlock through the SECOND conflicting holder: T3 waits on both T1
  // and T2; the representative edge points at T1 (first holder), but the
  // actual cycle runs T3 -> T2 -> T3.  ACD sees nothing; H/W-TWBG (which
  // keeps all edges) resolves it.
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kX).ok());  // waits on holders T1 and T2
  ASSERT_TRUE(lm.Acquire(2, 2, kS).ok());  // T2 waits on T3 -> cycle
  ASSERT_TRUE(core::AnalyzeByReduction(lm.table()).deadlocked);
  core::CostTable costs;
  AcdStrategy acd;
  StrategyOutcome outcome = acd.OnPeriodic(lm, costs);
  EXPECT_TRUE(outcome.aborted.empty());  // representative edge misleads
  HwTwbgPeriodicStrategy ours;
  StrategyOutcome resolved = ours.OnPeriodic(lm, costs);
  EXPECT_GE(resolved.cycles_found, 1u);
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(JiangStrategyTest, ResolvesOnBlockAndListsParticipators) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  core::CostTable costs;
  costs.Set(1, 3.0);
  costs.Set(2, 8.0);
  JiangStrategy jiang;
  StrategyOutcome outcome = jiang.OnBlock(lm, costs, 2);
  EXPECT_EQ(outcome.cycles_found, 1u);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{1}));
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(JiangStrategyTest, SeesTheFifoDeadlock) {
  // Jiang keeps the full relation (we grant it our ECR edges), so unlike
  // WFG/ACD it does catch queue-order deadlocks — at enumeration cost.
  lock::LockManager lm;
  core::BuildFifoDeadlock(lm);
  core::CostTable costs;
  JiangStrategy jiang;
  StrategyOutcome outcome = jiang.OnBlock(lm, costs, 1);
  EXPECT_GE(outcome.cycles_found, 1u);
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(JiangStrategyTest, EnumerationWorkExplodesOnDenseCycles) {
  // Example 4.1 has 4 overlapping cycles; enumeration touches many paths.
  lock::LockManager lm;
  core::BuildExample41(lm);
  core::CostTable costs;
  JiangStrategy jiang;
  StrategyOutcome outcome = jiang.OnBlock(lm, costs, 3);
  EXPECT_GE(outcome.cycles_found, 1u);
  EXPECT_GT(outcome.work, 0u);
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(ElmagarmidStrategyTest, AlwaysAbortsTheCurrentBlocker) {
  lock::LockManager lm;
  BuildClassicDeadlock(lm);
  core::CostTable costs;
  costs.Set(2, 1000.0);  // expensive — a cost-aware scheme would spare it
  ElmagarmidStrategy elmagarmid;
  StrategyOutcome outcome = elmagarmid.OnBlock(lm, costs, 2);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{2}));
  EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(ElmagarmidStrategyTest, NoCycleNoAbort) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  core::CostTable costs;
  ElmagarmidStrategy elmagarmid;
  StrategyOutcome outcome = elmagarmid.OnBlock(lm, costs, 2);
  EXPECT_TRUE(outcome.aborted.empty());
  EXPECT_TRUE(lm.IsBlocked(2));
}

TEST(TimeoutStrategyTest, AbortsAfterTimeoutEvenWithoutDeadlock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());  // merely waiting
  core::CostTable costs;
  TimeoutStrategy timeout(/*timeout_periods=*/2);
  EXPECT_TRUE(timeout.OnPeriodic(lm, costs).aborted.empty());
  EXPECT_TRUE(timeout.OnPeriodic(lm, costs).aborted.empty());
  StrategyOutcome third = timeout.OnPeriodic(lm, costs);
  EXPECT_EQ(third.aborted, (std::vector<lock::TransactionId>{2}));  // false!
}

TEST(TimeoutStrategyTest, GrantResetsTheClock) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  core::CostTable costs;
  TimeoutStrategy timeout(/*timeout_periods=*/2);
  timeout.OnPeriodic(lm, costs);
  lm.ReleaseAll(1);  // grants T2
  EXPECT_TRUE(timeout.OnPeriodic(lm, costs).aborted.empty());
  EXPECT_TRUE(timeout.OnPeriodic(lm, costs).aborted.empty());
  EXPECT_TRUE(timeout.OnPeriodic(lm, costs).aborted.empty());
}

TEST(FactoryTest, MakesEveryStrategy) {
  for (std::string_view name : AllStrategyNames()) {
    std::unique_ptr<DetectionStrategy> strategy = MakeStrategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
  }
  EXPECT_EQ(MakeStrategy("bogus"), nullptr);
}

TEST(FactoryTest, HwTwbgStrategiesResolveExample41) {
  for (std::string_view name : {"hwtwbg-periodic", "hwtwbg-continuous"}) {
    lock::LockManager lm;
    core::BuildExample41(lm);
    core::CostTable costs;
    std::unique_ptr<DetectionStrategy> strategy = MakeStrategy(name);
    StrategyOutcome outcome =
        strategy->is_continuous() ? strategy->OnBlock(lm, costs, 3)
                                  : strategy->OnPeriodic(lm, costs);
    EXPECT_GE(outcome.cycles_found, 1u) << name;
    EXPECT_EQ(outcome.repositioned, 1u) << name;  // TDR-2, nobody aborted
    EXPECT_TRUE(outcome.aborted.empty()) << name;
    EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked) << name;
  }
}

}  // namespace
}  // namespace twbg::baselines
