// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// End-to-end tests of the network lock service: a real net::Server on an
// ephemeral port, driven by net::TcpClient (and raw sockets where the
// test needs to violate the protocol or pipeline requests).  Covers the
// session lifecycle, dead-peer cleanup releasing locks and unblocking
// waiters, graceful drain (no request silently dropped), the per-session
// in-flight cap, and protocol-error handling.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "net/tcp_client.h"
#include "txn/concurrent_service.h"

namespace twbg::net {
namespace {

using txn::ConcurrentLockService;
using txn::ConcurrentServiceOptions;
using txn::DetectionMode;
using txn::TxnState;

struct Harness {
  std::unique_ptr<ConcurrentLockService> service;
  std::unique_ptr<Server> server;

  uint16_t port() const { return server->port(); }
};

Harness StartServer(ServerOptions server_options = {},
                    ConcurrentServiceOptions service_options = {}) {
  Harness harness;
  if (service_options.detection_mode == DetectionMode::kContinuous) {
    service_options.detection_mode = DetectionMode::kPeriodic;
  }
  auto service = ConcurrentLockService::Create(service_options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  harness.service = std::move(*service);
  server_options.port = 0;
  auto server = Server::Create(server_options, harness.service.get());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  harness.server = std::move(*server);
  Status started = harness.server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return harness;
}

std::unique_ptr<TcpClient> Connect(const Harness& harness) {
  ClientOptions options;
  options.port = harness.port();
  auto client = TcpClient::Create(options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

TEST(ServerOptionsTest, ValidateRejectsOutOfDomain) {
  ServerOptions options;
  options.host = "";
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.worker_threads = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.worker_threads = 65;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.max_sessions = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.max_inflight_per_session = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.await_poll = std::chrono::microseconds(0);
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  EXPECT_TRUE(ServerOptions{}.Validate().ok());
}

TEST(ServerCreateTest, RejectsContinuousEngine) {
  auto continuous = ConcurrentLockService::Create({});
  ASSERT_TRUE(continuous.ok());
  EXPECT_TRUE(Server::Create({}, continuous->get())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Server::Create({}, nullptr).status().IsInvalidArgument());
}

TEST(ClientOptionsTest, ValidateRejectsOutOfDomain) {
  ClientOptions options;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());  // port 0
  options.port = 1;
  options.host = "";
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.port = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(NetServiceTest, SessionLifecycle) {
  Harness harness = StartServer();
  auto client = Connect(harness);
  ASSERT_TRUE(client->Ping().ok());

  auto tid = client->Begin();
  ASSERT_TRUE(tid.ok()) << tid.status().ToString();
  auto outcome = client->Acquire(*tid, 1, lock::LockMode::kX);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, lock::RequestOutcome::kGranted);
  EXPECT_TRUE(client->Await(*tid).ok());
  auto state = client->State(*tid);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, TxnState::kActive);
  EXPECT_TRUE(client->Commit(*tid).ok());
  EXPECT_TRUE(client->Commit(*tid).IsFailedPrecondition());

  // Errors carry the service's message across the wire.
  Status missing = client->Commit(99999);
  EXPECT_TRUE(missing.IsNotFound()) << missing.ToString();

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sessions_active, 1u);
  EXPECT_EQ(stats->sessions_total, 1u);
}

TEST(NetServiceTest, ServerSideAwaitUnblocksOnGrant) {
  Harness harness = StartServer();
  auto holder = Connect(harness);
  auto waiter = Connect(harness);

  auto h = holder->Begin();
  auto w = waiter->Begin();
  ASSERT_TRUE(h.ok() && w.ok());
  ASSERT_TRUE(holder->Acquire(*h, 1, lock::LockMode::kX).ok());
  auto outcome = waiter->Acquire(*w, 1, lock::LockMode::kS);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, lock::RequestOutcome::kBlocked);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(holder->Commit(*h).ok());
  });
  // Await blocks on the daemon (session parked, no thread pinned) until
  // the commit hands the lock over.
  EXPECT_TRUE(waiter->Await(*w).ok());
  releaser.join();
  EXPECT_TRUE(waiter->Commit(*w).ok());
}

TEST(NetServiceTest, DeadlockVictimSurfacesOverTheWire) {
  Harness harness = StartServer();
  auto c1 = Connect(harness);
  auto c2 = Connect(harness);

  auto t1 = c1->Begin();
  auto t2 = c2->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(c1->Acquire(*t1, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE(c2->Acquire(*t2, 2, lock::LockMode::kX).ok());
  EXPECT_EQ(*c1->Acquire(*t1, 2, lock::LockMode::kX),
            lock::RequestOutcome::kBlocked);
  EXPECT_EQ(*c2->Acquire(*t2, 1, lock::LockMode::kX),
            lock::RequestOutcome::kBlocked);

  auto deadlocked = c1->HasDeadlock();
  ASSERT_TRUE(deadlocked.ok());
  EXPECT_TRUE(*deadlocked);
  ASSERT_TRUE(c1->SetCost(*t1, 1.0).ok());
  ASSERT_TRUE(c2->SetCost(*t2, 10.0).ok());

  auto detect = c1->Detect();
  ASSERT_TRUE(detect.ok());
  ASSERT_EQ(detect->aborted.size(), 1u);
  EXPECT_EQ(detect->aborted[0], *t1);

  EXPECT_TRUE(c1->Await(*t1).IsDeadlockVictim());
  EXPECT_TRUE(c2->Await(*t2).ok());
  EXPECT_TRUE(c2->Commit(*t2).ok());
}

TEST(NetServiceTest, DeadPeerAbortReleasesLocksAndUnblocksWaiter) {
  Harness harness = StartServer();
  auto waiter = Connect(harness);
  auto w = waiter->Begin();
  ASSERT_TRUE(w.ok());

  {
    // The doomed peer holds R1 and then vanishes without a Commit.
    auto doomed = Connect(harness);
    auto d = doomed->Begin();
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(doomed->Acquire(*d, 1, lock::LockMode::kX).ok());
    EXPECT_EQ(*waiter->Acquire(*w, 1, lock::LockMode::kX),
              lock::RequestOutcome::kBlocked);
    // ~TcpClient closes the socket: the daemon must abort the orphan.
  }

  // The orphan abort releases R1, which grants the waiter.
  EXPECT_TRUE(waiter->Await(*w).ok());
  EXPECT_TRUE(waiter->Commit(*w).ok());

  // The cleanup is visible in the counters once the reactor retires the
  // session (poll briefly — the close is asynchronous).
  for (int i = 0; i < 100; ++i) {
    auto stats = waiter->Stats();
    ASSERT_TRUE(stats.ok());
    if (stats->orphan_aborts == 1 && stats->sessions_active == 1) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "dead-peer cleanup never showed up in the stats";
}

TEST(NetServiceTest, GracefulDrainFinishesInFlightAndRejectsNew) {
  ServerOptions options;
  options.drain_deadline = std::chrono::milliseconds(2000);
  Harness harness = StartServer(options);
  auto client = Connect(harness);
  auto tid = client->Begin();
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(client->Acquire(*tid, 1, lock::LockMode::kX).ok());

  harness.server->BeginDrain();
  EXPECT_TRUE(harness.server->draining());

  // New work is shed with the wire-level retry-after...
  Status shed = client->Begin().status();
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_GT(client->last_retry_after_us(), 0u);
  // ...but the in-flight transaction finishes cleanly.
  EXPECT_TRUE(client->Commit(*tid).ok());

  harness.server->Join();
  const ServerStats stats = harness.server->stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  // Nothing was in flight at the deadline, so nothing was aborted.
  EXPECT_EQ(stats.orphan_aborts, 0u);
  EXPECT_EQ(stats.requests, stats.responses);
}

TEST(NetServiceTest, DrainDeadlineAbortsStragglers) {
  ServerOptions options;
  options.drain_deadline = std::chrono::milliseconds(100);
  Harness harness = StartServer(options);
  auto client = Connect(harness);
  auto tid = client->Begin();
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(client->Acquire(*tid, 1, lock::LockMode::kX).ok());

  // The client never commits: the drain deadline must abort for it.
  harness.server->BeginDrain();
  harness.server->Join();
  const ServerStats stats = harness.server->stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.orphan_aborts, 1u);
  EXPECT_EQ(harness.service->live_transactions(), 0u);
}

TEST(NetServiceTest, StopIsImmediate) {
  Harness harness = StartServer();
  auto client = Connect(harness);
  ASSERT_TRUE(client->Ping().ok());
  harness.server->Stop();
  harness.server->Join();
  EXPECT_EQ(harness.server->stats().sessions_active, 0u);
}

// Raw-socket helpers for the protocol-violation and pipelining tests.
int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + sent, bytes.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

// Reads until EOF, returning everything received.
std::string ReadToEof(int fd) {
  std::string all;
  char chunk[4096];
  while (true) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    all.append(chunk, static_cast<size_t>(n));
  }
  return all;
}

TEST(NetServiceTest, MalformedFrameGetsErrorResponseAndClose) {
  Harness harness = StartServer();
  const int fd = RawConnect(harness.port());

  // An oversized length announcement is an unrecoverable protocol error:
  // the daemon responds with a kPing-typed error frame and closes.
  const uint32_t length = kMaxFrameBytes + 1;
  std::string bytes(4, '\0');
  std::memcpy(bytes.data(), &length, sizeof(length));
  SendAll(fd, bytes);

  const std::string raw = ReadToEof(fd);  // server closed: EOF terminates
  close(fd);
  ASSERT_GE(raw.size(), 4u);
  FrameReader reader;
  reader.Append(raw.data(), raw.size());
  std::string payload;
  ASSERT_TRUE(reader.Next(&payload).ok());
  Response response;
  ASSERT_TRUE(DecodeResponse(payload, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalidArgument);

  // The counter ticks and the daemon survives for other clients.
  auto client = Connect(harness);
  EXPECT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(harness.server->stats().protocol_errors, 1u);
}

TEST(NetServiceTest, InflightCapShedsWithRetryAfter) {
  ServerOptions options;
  options.max_inflight_per_session = 4;
  options.retry_after = std::chrono::microseconds(750);
  Harness harness = StartServer(options);

  // Park the session on an Await (blocked transaction), then pipeline
  // more requests than the cap allows without reading responses.
  auto holder = Connect(harness);
  auto h = holder->Begin();
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(holder->Acquire(*h, 1, lock::LockMode::kX).ok());

  const int fd = RawConnect(harness.port());
  Request begin;
  begin.type = MsgType::kBegin;
  begin.req_id = 1;
  SendAll(fd, EncodeRequest(begin));
  Request acquire;
  acquire.type = MsgType::kAcquire;
  acquire.req_id = 2;
  acquire.tid = 2;  // the daemon assigns sequential ids: this is ours
  acquire.rid = 1;
  acquire.mode = lock::LockMode::kS;
  SendAll(fd, EncodeRequest(acquire));
  Request await;
  await.type = MsgType::kAwait;
  await.req_id = 3;
  await.tid = 2;
  SendAll(fd, EncodeRequest(await));
  std::string burst;
  for (uint64_t i = 0; i < 16; ++i) {
    Request ping;
    ping.type = MsgType::kPing;
    ping.req_id = 100 + i;
    burst += EncodeRequest(ping);
  }
  SendAll(fd, burst);

  // Give the daemon a moment to decode the burst, then unblock the
  // await so the session (and its queued pings) can finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(holder->Commit(*h).ok());

  // Collect responses until every request is answered.
  FrameReader reader;
  size_t answered = 0;
  size_t shed = 0;
  char chunk[4096];
  while (answered < 19) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "server closed before answering everything";
    reader.Append(chunk, static_cast<size_t>(n));
    std::string payload;
    while (reader.Next(&payload).ok()) {
      Response response;
      ASSERT_TRUE(DecodeResponse(payload, &response).ok());
      ++answered;
      if (response.code == StatusCode::kResourceExhausted) {
        ++shed;
        EXPECT_EQ(response.retry_after_us, 750u);
      }
    }
  }
  close(fd);
  // The burst overran the cap: some pings were shed, none went dark.
  EXPECT_GT(shed, 0u);
  EXPECT_GE(harness.server->stats().inflight_rejects, shed);
}

TEST(NetServiceTest, ManyConcurrentSessions) {
  ServerOptions options;
  options.worker_threads = 4;
  Harness harness = StartServer(options);

  constexpr int kClients = 32;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&harness, &failures, i] {
      ClientOptions client_options;
      client_options.port = harness.port();
      auto client = TcpClient::Create(client_options);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 10; ++round) {
        auto tid = (*client)->Begin();
        if (!tid.ok()) {
          ++failures;
          return;
        }
        const lock::ResourceId rid = 1 + ((i + round) % 8);
        auto outcome = (*client)->Acquire(*tid, rid, lock::LockMode::kX);
        if (!outcome.ok() ||
            (*outcome == lock::RequestOutcome::kBlocked &&
             !(*client)->Await(*tid).ok())) {
          // A detection pass may abort us; that's a legal outcome.
          continue;
        }
        if (!(*client)->Commit(*tid).ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = harness.server->stats();
  EXPECT_EQ(stats.sessions_total, static_cast<uint64_t>(kClients));
  EXPECT_EQ(harness.service->live_transactions(), 0u);
}

}  // namespace
}  // namespace twbg::net
