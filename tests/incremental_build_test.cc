// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Differential tests for the incremental GraphBuilder edge cache: against
// over a thousand randomized schedules and every checked-in scenario
// script, the incrementally refreshed TST / H/W-TWBG must be
// byte-identical to a from-scratch build, and a periodic detector running
// on the cache must make exactly the decisions of one that rebuilds every
// pass.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "core/continuous_detector.h"
#include "core/graph_builder.h"
#include "core/periodic_detector.h"
#include "core/script.h"
#include "core/tst.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/sinks.h"

#ifndef TWBG_SCENARIO_DIR
#error "TWBG_SCENARIO_DIR must be defined by the build"
#endif

namespace twbg::core {
namespace {

using lock::LockManager;
using lock::LockMode;

// One random lock-manager op.  Pre-generating the schedule lets two
// managers replay it in lockstep.
struct Op {
  lock::TransactionId tid = 0;
  lock::ResourceId rid = 0;
  LockMode mode = LockMode::kNL;
  bool release = false;
};

std::vector<Op> MakeSchedule(common::Rng& rng, int txns, int resources,
                             int ops) {
  std::vector<Op> schedule;
  schedule.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.tid = static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
    if (rng.NextBernoulli(0.1)) {
      op.release = true;
    } else {
      op.rid = static_cast<lock::ResourceId>(rng.NextInRange(1, resources));
      op.mode = lock::kRealModes[rng.NextBelow(5)];
    }
    schedule.push_back(op);
  }
  return schedule;
}

void Apply(LockManager& lm, const Op& op) {
  if (op.release) {
    lm.ReleaseAll(op.tid);
  } else {
    (void)lm.Acquire(op.tid, op.rid, op.mode);
  }
}

// The incremental report carries a "graph-cache:" line the scratch one
// lacks; everything else must match byte-for-byte.
std::string StripCacheLines(const std::string& s) {
  std::istringstream in(s);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("graph-cache:") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class IncrementalBuildTest : public ::testing::TestWithParam<uint64_t> {};

// Byte-identical structures: after every mutation, one long-lived
// GraphBuilder refreshed in place must reproduce Tst::Build and
// HwTwbg::Build exactly.  6 seeds x 200 rounds = 1200 schedules; the
// builder survives across rounds, so every round also exercises the
// table-switch (full-sweep) path before settling into the journal path.
TEST_P(IncrementalBuildTest, RefreshMatchesScratchOnRandomSchedules) {
  common::Rng rng(GetParam());
  GraphBuilder builder;
  for (int round = 0; round < 200; ++round) {
    LockManager lm;
    std::vector<Op> schedule = MakeSchedule(rng, 8, 4, 40);
    for (size_t i = 0; i < schedule.size(); ++i) {
      Apply(lm, schedule[i]);
      if (i % 3 != 0 && i + 1 != schedule.size()) continue;
      ASSERT_EQ(builder.RefreshTst(lm.table()).ToString(),
                Tst::Build(lm.table()).ToString())
          << "seed " << GetParam() << " round " << round << " op " << i;
      // After the refresh the cache is clean; the graph snapshot must
      // still equal a scratch build.
      ASSERT_EQ(builder.BuildGraph(lm.table()).ToString(),
                HwTwbg::Build(lm.table()).ToString());
      size_t table_resources = 0;
      for (const auto& [rid, state] : lm.table()) {
        (void)rid;
        (void)state;
        ++table_resources;
      }
      ASSERT_EQ(builder.stats().num_dirty_resources +
                    builder.stats().num_cached_resources,
                table_resources);
    }
  }
}

// Walk parity: two managers replay identical schedules; a periodic
// detector with the cache and one without must produce byte-identical
// resolution reports (cycles, decisions, victims, grants) and leave both
// managers in agreeing states.
TEST_P(IncrementalBuildTest, PeriodicDetectorParityOnRandomSchedules) {
  common::Rng rng(GetParam() ^ 0xfeed);
  // Only the incremental side is observed: post-mortem collection must
  // neither perturb its decisions nor leak into the compared reports, and
  // every resolved cycle must emit exactly one kCyclePostMortem.
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  size_t total_cycles = 0;
  for (int round = 0; round < 60; ++round) {
    LockManager inc_lm, scr_lm;
    CostTable inc_costs, scr_costs;
    DetectorOptions inc_opts, scr_opts;
    inc_opts.incremental_build = true;
    inc_opts.event_bus = &bus;
    scr_opts.incremental_build = false;
    PeriodicDetector inc(inc_opts), scr(scr_opts);
    std::vector<Op> schedule = MakeSchedule(rng, 8, 4, 60);
    for (size_t i = 0; i < schedule.size(); ++i) {
      Apply(inc_lm, schedule[i]);
      Apply(scr_lm, schedule[i]);
      if (i % 20 != 0 && i + 1 != schedule.size()) continue;
      ResolutionReport inc_report = inc.RunPass(inc_lm, inc_costs);
      ResolutionReport scr_report = scr.RunPass(scr_lm, scr_costs);
      ASSERT_EQ(StripCacheLines(inc_report.ToString()),
                StripCacheLines(scr_report.ToString()))
          << "seed " << GetParam() << " round " << round << " op " << i;
      ASSERT_EQ(Tst::Build(inc_lm.table()).ToString(),
                Tst::Build(scr_lm.table()).ToString());
      ASSERT_EQ(inc_report.post_mortems.size(), inc_report.cycles_detected);
      ASSERT_TRUE(scr_report.post_mortems.empty());  // no bus, no opt-in
      total_cycles += inc_report.cycles_detected;
    }
  }
  EXPECT_EQ(sink.Count(obs::EventKind::kCyclePostMortem), total_cycles);
}

// Same parity for the continuous detector's non-scoped incremental path.
TEST_P(IncrementalBuildTest, ContinuousDetectorParityOnRandomSchedules) {
  common::Rng rng(GetParam() ^ 0xc0ffee);
  for (int round = 0; round < 30; ++round) {
    LockManager inc_lm, scr_lm;
    CostTable inc_costs, scr_costs;
    DetectorOptions inc_opts, scr_opts;
    inc_opts.incremental_build = true;
    inc_opts.scoped_continuous_build = false;
    scr_opts.incremental_build = false;
    scr_opts.scoped_continuous_build = false;
    ContinuousDetector inc(inc_opts), scr(scr_opts);
    std::vector<Op> schedule = MakeSchedule(rng, 8, 4, 60);
    for (const Op& op : schedule) {
      if (op.release) {
        inc_lm.ReleaseAll(op.tid);
        scr_lm.ReleaseAll(op.tid);
        continue;
      }
      Result<lock::RequestOutcome> inc_out =
          inc_lm.Acquire(op.tid, op.rid, op.mode);
      Result<lock::RequestOutcome> scr_out =
          scr_lm.Acquire(op.tid, op.rid, op.mode);
      ASSERT_EQ(inc_out.ok(), scr_out.ok());
      if (!inc_out.ok() || *inc_out != lock::RequestOutcome::kBlocked) {
        continue;
      }
      ASSERT_EQ(*inc_out, *scr_out);
      ResolutionReport inc_report = inc.OnBlock(inc_lm, inc_costs, op.tid);
      ResolutionReport scr_report = scr.OnBlock(scr_lm, scr_costs, op.tid);
      ASSERT_EQ(StripCacheLines(inc_report.ToString()),
                StripCacheLines(scr_report.ToString()))
          << "seed " << GetParam() << " round " << round;
      ASSERT_EQ(Tst::Build(inc_lm.table()).ToString(),
                Tst::Build(scr_lm.table()).ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalBuildTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Every checked-in scenario script must behave identically (including all
// of its own expect* assertions) under the cached and from-scratch
// builders, down to the printed output.
TEST(IncrementalScenarioTest, ScriptsAgreeWithScratchBuild) {
  size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(TWBG_SCENARIO_DIR)) {
    if (entry.path().extension() != ".twbg") continue;
    ++count;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::stringstream buffer;
    buffer << file.rdbuf();

    ScriptOptions inc_opts, scr_opts;
    inc_opts.detector.incremental_build = true;
    scr_opts.detector.incremental_build = false;
    ScriptRunner inc(inc_opts), scr(scr_opts);
    std::string inc_out, scr_out;
    Status inc_status = inc.ExecuteScript(buffer.str(), &inc_out);
    Status scr_status = scr.ExecuteScript(buffer.str(), &scr_out);
    EXPECT_TRUE(inc_status.ok())
        << entry.path() << ": " << inc_status.ToString();
    EXPECT_TRUE(scr_status.ok())
        << entry.path() << ": " << scr_status.ToString();
    EXPECT_EQ(StripCacheLines(inc_out), StripCacheLines(scr_out))
        << entry.path();
    EXPECT_EQ(Tst::Build(inc.manager().table()).ToString(),
              Tst::Build(scr.manager().table()).ToString())
        << entry.path();
  }
  EXPECT_GE(count, 4u);
}

}  // namespace
}  // namespace twbg::core
