// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// End-to-end tests of the periodic detection-resolution algorithm (§5):
// exact replays of the paper's Examples 4.1 and 5.1, policy ablations and
// randomized full-resolution properties.

#include "core/periodic_detector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

std::vector<lock::TransactionId> QueueIds(const lock::LockManager& lm,
                                          lock::ResourceId rid) {
  std::vector<lock::TransactionId> out;
  const lock::ResourceState* state = lm.table().Find(rid);
  if (state == nullptr) return out;
  for (const lock::QueueEntry& q : state->queue()) out.push_back(q.tid);
  return out;
}

TEST(PeriodicDetectorTest, Example51ReplaysThePaperExactly) {
  lock::LockManager lm;
  BuildExample51(lm);
  CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);

  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);

  // The walk from T1 finds {T1,T2,T3} first (W edge precedes H edges),
  // picks T3 (cost 1); then finds {T1,T2} and picks T2 (cost 4).
  ASSERT_EQ(report.cycles_detected, 2u);
  ASSERT_EQ(report.decisions.size(), 2u);
  EXPECT_EQ(report.decisions[0].cycle,
            (std::vector<lock::TransactionId>{1, 2, 3}));
  EXPECT_EQ(report.decisions[0].victim().kind, VictimKind::kAbort);
  EXPECT_EQ(report.decisions[0].victim().junction, 3u);
  EXPECT_EQ(report.decisions[1].cycle,
            (std::vector<lock::TransactionId>{1, 2}));
  EXPECT_EQ(report.decisions[1].victim().junction, 2u);

  // Step 3 (reverse-insertion order): aborting T2 grants T3, which is then
  // spared — "the abortion-list is {T2}, the grant-list is {T3}".
  EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{2}));
  EXPECT_EQ(report.spared, (std::vector<lock::TransactionId>{3}));
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{3}));

  // Final state (the paper's closing snapshot of Example 5.1).
  const lock::ResourceState* r1 = lm.table().Find(kR1);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->total_mode(), kS);
  EXPECT_EQ(r1->holders().size(), 2u);  // T1 and T3 share S
  EXPECT_TRUE(r1->queue().empty());
  const lock::ResourceState* r2 = lm.table().Find(kR2);
  ASSERT_NE(r2, nullptr);
  ASSERT_EQ(r2->holders().size(), 1u);
  EXPECT_EQ(r2->holders()[0].tid, 3u);
  EXPECT_EQ(QueueIds(lm, kR2), (std::vector<lock::TransactionId>{1}));

  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(PeriodicDetectorTest, Example41ResolvedWithoutAnyAbort) {
  lock::LockManager lm;
  BuildExample41(lm);
  CostTable costs;  // uniform costs: the TDR-2 candidate (0.5) wins

  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);

  // One detected cycle (the paper's four-TRRP cycle); the repositioning of
  // T8 resolves all four cycles preemptively.
  ASSERT_EQ(report.cycles_detected, 1u);
  EXPECT_EQ(report.decisions[0].cycle,
            (std::vector<lock::TransactionId>{1, 2, 5, 6, 7, 8, 9, 3}));
  const VictimCandidate& victim = report.decisions[0].victim();
  EXPECT_EQ(victim.kind, VictimKind::kReposition);
  EXPECT_EQ(victim.junction, 3u);
  EXPECT_EQ(victim.st, (std::vector<lock::TransactionId>{8}));
  EXPECT_TRUE(report.aborted.empty());
  EXPECT_EQ(report.repositioned, (std::vector<lock::ResourceId>{kR2}));
  // Step 3 reschedules R2: T9 is admitted, T3 stays (paper's Figure 4.2
  // narration: "the request of T9 is granted but that of T3 cannot be").
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{9}));
  EXPECT_EQ(QueueIds(lm, kR2), (std::vector<lock::TransactionId>{3, 8, 4}));
  const lock::ResourceState* r2 = lm.table().Find(kR2);
  EXPECT_EQ(r2->total_mode(), kIX);

  // ST members' costs were bumped (livelock avoidance).
  EXPECT_DOUBLE_EQ(costs.Get(8), 2.0);

  // Figure 4.2: no cycle remains.
  EXPECT_FALSE(HwTwbg::Build(lm.table()).HasCycle());
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(PeriodicDetectorTest, Example41WithTdr2DisabledAborts) {
  lock::LockManager lm;
  BuildExample41(lm);
  CostTable costs;
  DetectorOptions options;
  options.enable_tdr2 = false;
  PeriodicDetector detector(options);
  ResolutionReport report = detector.RunPass(lm, costs);
  EXPECT_FALSE(report.aborted.empty());
  EXPECT_TRUE(report.repositioned.empty());
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(PeriodicDetectorTest, InsertionOrderAbortsBothVictims) {
  // Ablation of the Step 3 processing order: walking the abortion list in
  // insertion order examines T3 first, which forfeits the sparing the
  // paper's order achieves.
  lock::LockManager lm;
  BuildExample51(lm);
  CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);
  DetectorOptions options;
  options.abort_order = AbortOrder::kInsertion;
  PeriodicDetector detector(options);
  ResolutionReport report = detector.RunPass(lm, costs);
  EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{3, 2}));
  EXPECT_TRUE(report.spared.empty());
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{1}));
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(PeriodicDetectorTest, CleanTableProducesEmptyReport) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());  // plain wait, no deadlock
  CostTable costs;
  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);
  EXPECT_EQ(report.cycles_detected, 0u);
  EXPECT_TRUE(report.aborted.empty());
  EXPECT_TRUE(report.granted.empty());
  EXPECT_TRUE(report.repositioned.empty());
  EXPECT_TRUE(lm.IsBlocked(2));  // untouched
}

TEST(PeriodicDetectorTest, ConversionDeadlockResolvedByAbort) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kIS).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  CostTable costs;
  costs.Set(1, 5.0);
  costs.Set(2, 2.0);
  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);
  ASSERT_EQ(report.cycles_detected, 1u);
  EXPECT_EQ(report.aborted, (std::vector<lock::TransactionId>{2}));
  EXPECT_EQ(report.granted, (std::vector<lock::TransactionId>{1}));
  EXPECT_EQ(lm.table().Find(1)->FindHolder(1)->granted, kX);
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
}

TEST(PeriodicDetectorTest, TwoIndependentDeadlocksResolvedInOnePass) {
  lock::LockManager lm;
  // Deadlock A on R1/R2, deadlock B on R3/R4.
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 3, kX).ok());
  ASSERT_TRUE(lm.Acquire(4, 4, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 4, kX).ok());
  ASSERT_TRUE(lm.Acquire(4, 3, kX).ok());
  CostTable costs;
  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);
  EXPECT_EQ(report.cycles_detected, 2u);
  EXPECT_EQ(report.aborted.size(), 2u);
  EXPECT_FALSE(AnalyzeByReduction(lm.table()).deadlocked);
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(PeriodicDetectorTest, SecondPassIsANoop) {
  lock::LockManager lm;
  BuildExample41(lm);
  CostTable costs;
  PeriodicDetector detector;
  detector.RunPass(lm, costs);
  ResolutionReport second = detector.RunPass(lm, costs);
  EXPECT_EQ(second.cycles_detected, 0u);
  EXPECT_TRUE(second.aborted.empty());
  EXPECT_TRUE(second.repositioned.empty());
}

TEST(PeriodicDetectorTest, ReportStatsAndToString) {
  lock::LockManager lm;
  BuildExample51(lm);
  CostTable costs;
  PeriodicDetector detector;
  ResolutionReport report = detector.RunPass(lm, costs);
  EXPECT_EQ(report.num_transactions, 3u);
  EXPECT_EQ(report.num_edges, 6u);  // 4 real edges + 2 sentinels
  EXPECT_GT(report.steps, 0u);
  EXPECT_TRUE(report.found_deadlock());
  std::string s = report.ToString();
  EXPECT_NE(s.find("cycles=2"), std::string::npos);
  EXPECT_NE(s.find("abortion-list"), std::string::npos);
}

// Property: a single pass resolves every deadlock, never "resolves" a
// non-deadlock, and leaves a consistent lock manager — across thousands of
// random tables and all abort-order policies.
class PeriodicDetectorPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, AbortOrder>> {};

TEST_P(PeriodicDetectorPropertyTest, OnePassFullyResolves) {
  auto [seed, order] = GetParam();
  common::Rng rng(seed);
  for (int round = 0; round < 60; ++round) {
    lock::LockManager lm;
    const int txns = 2 + static_cast<int>(rng.NextBelow(12));
    const int resources = 1 + static_cast<int>(rng.NextBelow(5));
    const int ops = 10 + static_cast<int>(rng.NextBelow(120));
    for (int op = 0; op < ops; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, resources));
      (void)lm.Acquire(tid, rid, lock::kRealModes[rng.NextBelow(5)]);
    }
    CostTable costs;
    for (int t = 1; t <= txns; ++t) {
      costs.Set(static_cast<lock::TransactionId>(t),
                1.0 + static_cast<double>(rng.NextBelow(10)));
    }
    const bool was_deadlocked = AnalyzeByReduction(lm.table()).deadlocked;
    DetectorOptions options;
    options.abort_order = order;
    PeriodicDetector detector(options);
    ResolutionReport report = detector.RunPass(lm, costs);

    ASSERT_EQ(report.found_deadlock(), was_deadlocked)
        << "seed=" << seed << " round=" << round;
    ASSERT_FALSE(AnalyzeByReduction(lm.table()).deadlocked)
        << "seed=" << seed << " round=" << round << "\n"
        << lm.table().ToString();
    ASSERT_FALSE(HwTwbg::Build(lm.table()).HasCycle());
    Status invariants = lm.CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    // Nothing both aborted and granted; spared víctims are granted.
    for (lock::TransactionId tid : report.aborted) {
      EXPECT_EQ(std::count(report.granted.begin(), report.granted.end(), tid),
                0);
    }
    for (lock::TransactionId tid : report.spared) {
      EXPECT_EQ(std::count(report.granted.begin(), report.granted.end(), tid),
                1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOrders, PeriodicDetectorPropertyTest,
    ::testing::Combine(::testing::Values(7, 17, 27, 37, 47),
                       ::testing::Values(AbortOrder::kReverseInsertion,
                                         AbortOrder::kInsertion,
                                         AbortOrder::kCostDescending,
                                         AbortOrder::kCostAscending)));

}  // namespace
}  // namespace twbg::core
