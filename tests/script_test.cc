// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/script.h"

#include <gtest/gtest.h>

namespace twbg::core {
namespace {

TEST(ScriptTest, AcquireAndExpect) {
  ScriptRunner runner;
  std::string out;
  EXPECT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  EXPECT_TRUE(runner.ExecuteLine("expect granted", &out).ok());
  EXPECT_TRUE(runner.ExecuteLine("acquire 2 1 S", &out).ok());
  EXPECT_TRUE(runner.ExecuteLine("expect blocked", &out).ok());
  EXPECT_FALSE(runner.ExecuteLine("expect granted", &out).ok());
  EXPECT_NE(out.find("T1 <- X on R1: granted"), std::string::npos);
}

TEST(ScriptTest, IdsAcceptLetterPrefixes) {
  ScriptRunner runner;
  std::string out;
  EXPECT_TRUE(runner.ExecuteLine("acquire T1 R10 SIX", &out).ok());
  EXPECT_NE(runner.manager().table().Find(10), nullptr);
}

TEST(ScriptTest, CommentsAndBlanksAreIgnored) {
  ScriptRunner runner;
  std::string out;
  EXPECT_TRUE(runner.ExecuteLine("", &out).ok());
  EXPECT_TRUE(runner.ExecuteLine("   # just a comment", &out).ok());
  EXPECT_TRUE(runner.ExecuteLine("acquire 1 1 S # trailing", &out).ok());
  EXPECT_TRUE(out.find("granted") != std::string::npos);
}

TEST(ScriptTest, UnknownCommandAndBadArgs) {
  ScriptRunner runner;
  std::string out;
  EXPECT_TRUE(runner.ExecuteLine("frobnicate", &out).IsInvalidArgument());
  EXPECT_TRUE(runner.ExecuteLine("acquire 1 1", &out).IsInvalidArgument());
  EXPECT_TRUE(runner.ExecuteLine("acquire x y Z", &out).IsInvalidArgument());
  EXPECT_TRUE(runner.ExecuteLine("expect granted", &out)
                  .IsFailedPrecondition());
}

TEST(ScriptTest, FullExample51Script) {
  // The paper's Example 5.1, end to end, as a script with assertions.
  constexpr const char* kScript = R"(
# Example 5.1 of the paper
acquire 1 1 S
expect granted
acquire 2 2 S
acquire 3 2 S
acquire 2 1 X
expect blocked
acquire 3 1 S
expect blocked
acquire 1 2 X
expect blocked
expect-deadlock yes
cost 1 6
cost 2 4
cost 3 1
detect
expect-aborted 2
expect-deadlock no
)";
  ScriptRunner runner;
  std::string out;
  Status status = runner.ExecuteScript(kScript, &out);
  EXPECT_TRUE(status.ok()) << status.ToString() << "\n" << out;
  EXPECT_NE(out.find("abortion-list: {T2}"), std::string::npos);
}

TEST(ScriptTest, ScriptErrorsCarryLineNumbers) {
  ScriptRunner runner;
  std::string out;
  Status status = runner.ExecuteScript("acquire 1 1 X\nbogus\n", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string_view::npos);
}

TEST(ScriptTest, ViewsProduceOutput) {
  ScriptRunner runner;
  std::string out;
  ASSERT_TRUE(runner.ExecuteScript("acquire 1 1 X\nacquire 2 1 S\n", &out)
                  .ok());
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("table", &out).ok());
  EXPECT_NE(out.find("R1(X)"), std::string::npos);
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("graph", &out).ok());
  EXPECT_NE(out.find("T1 -H(R1)-> T2"), std::string::npos);
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("tst", &out).ok());
  EXPECT_NE(out.find("T2: pr=R1"), std::string::npos);
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("dot", &out).ok());
  EXPECT_NE(out.find("digraph"), std::string::npos);
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("oracle", &out).ok());
  EXPECT_NE(out.find("deadlocked=no"), std::string::npos);
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("costs", &out).ok());
  EXPECT_NE(out.find("T1: 1.00"), std::string::npos);
}

TEST(ScriptTest, CyclesView) {
  ScriptRunner runner;
  std::string out;
  ASSERT_TRUE(runner
                  .ExecuteScript(
                      "acquire 1 1 X\nacquire 2 2 X\nacquire 1 2 X\n"
                      "acquire 2 1 X\n",
                      &out)
                  .ok());
  out.clear();
  EXPECT_TRUE(runner.ExecuteLine("cycles", &out).ok());
  EXPECT_NE(out.find("cycle {T1, T2}"), std::string::npos);
}

TEST(ScriptTest, ResetClearsState) {
  ScriptRunner runner;
  std::string out;
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  ASSERT_TRUE(runner.ExecuteLine("reset", &out).ok());
  EXPECT_TRUE(runner.manager().table().empty());
  EXPECT_FALSE(runner.last_report().has_value());
}

TEST(ScriptTest, EchoMode) {
  ScriptOptions options;
  options.echo = true;
  ScriptRunner runner(options);
  std::string out;
  ASSERT_TRUE(runner.ExecuteLine("acquire 1 1 X", &out).ok());
  EXPECT_NE(out.find("> acquire 1 1 X"), std::string::npos);
}

TEST(ScriptTest, ReleaseGrantsWaiters) {
  ScriptRunner runner;
  std::string out;
  ASSERT_TRUE(runner.ExecuteScript(
                      "acquire 1 1 X\nacquire 2 1 S\nacquire 3 1 S\n", &out)
                  .ok());
  out.clear();
  ASSERT_TRUE(runner.ExecuteLine("release 1", &out).ok());
  EXPECT_NE(out.find("granted 2 waiter(s)"), std::string::npos);
}

}  // namespace
}  // namespace twbg::core
