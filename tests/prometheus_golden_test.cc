// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Golden-style verification of the Prometheus text exposition: exact
// output for a deterministic event feed, plus structural invariants every
// exposition must hold — a `# HELP`/`# TYPE` pair per metric, cumulative
// (non-decreasing) le-buckets, and a terminal `+Inf` bucket equal to
// `_count`.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/observer.h"

namespace twbg {
namespace {

using obs::Event;
using obs::EventKind;

void Feed(obs::LatencyObserver* observer, EventKind kind, double value,
          uint64_t a = 0) {
  Event event;
  event.kind = kind;
  event.value = value;
  event.a = a;
  observer->OnEvent(event);
}

// Deterministic feed used by both tests: three waits (1, 3, 7 ticks),
// three blocks (queue depths 2, 2, 5), one pass with its two steps, one
// resolved 2-cycle.
obs::LatencyObserver MakeObserver() {
  obs::LatencyObserver observer;
  Feed(&observer, EventKind::kWaitEnd, 1);
  Feed(&observer, EventKind::kWaitEnd, 3);
  Feed(&observer, EventKind::kWaitEnd, 7);
  Feed(&observer, EventKind::kLockBlock, 0, 2);
  Feed(&observer, EventKind::kLockBlock, 0, 2);
  Feed(&observer, EventKind::kLockBlock, 0, 5);
  Feed(&observer, EventKind::kStep1, 100);
  Feed(&observer, EventKind::kStep2, 200);
  Feed(&observer, EventKind::kPassEnd, 1000);
  Feed(&observer, EventKind::kCycleResolved, 0, 2);
  return observer;
}

TEST(PrometheusGoldenTest, ExactExpositionForDeterministicFeed) {
  const obs::LatencyObserver observer = MakeObserver();
  const std::string text = obs::ToPrometheusText(observer);

  // Counter block: non-zero kinds only, in taxonomy order.
  const char kCounters[] =
      "# HELP twbg_events_total Structured events observed, by kind.\n"
      "# TYPE twbg_events_total counter\n"
      "twbg_events_total{kind=\"lock_block\"} 3\n"
      "twbg_events_total{kind=\"wait_end\"} 3\n"
      "twbg_events_total{kind=\"step1\"} 1\n"
      "twbg_events_total{kind=\"step2\"} 1\n"
      "twbg_events_total{kind=\"pass_end\"} 1\n"
      "twbg_events_total{kind=\"cycle_resolved\"} 1\n";
  EXPECT_EQ(text.rfind(kCounters, 0), 0u) << text;

  // Wait-time histogram: 1 -> (0,2], 3 -> (2,4], 7 -> (4,8]; buckets are
  // cumulative and the +Inf bucket equals the count.
  const char kWaitBlock[] =
      "# HELP twbg_wait_time_ticks Completed lock waits, in simulator "
      "ticks.\n"
      "# TYPE twbg_wait_time_ticks histogram\n"
      "twbg_wait_time_ticks_bucket{le=\"2\"} 1\n"
      "twbg_wait_time_ticks_bucket{le=\"4\"} 2\n"
      "twbg_wait_time_ticks_bucket{le=\"8\"} 3\n"
      "twbg_wait_time_ticks_bucket{le=\"+Inf\"} 3\n"
      "twbg_wait_time_ticks_sum 11\n"
      "twbg_wait_time_ticks_count 3\n";
  EXPECT_NE(text.find(kWaitBlock), std::string::npos) << text;

  // Queue-depth histogram: two 2s share one bucket, the 5 lands above.
  const char kDepthBlock[] =
      "# HELP twbg_queue_depth Resource queue depth observed at each lock "
      "block.\n"
      "# TYPE twbg_queue_depth histogram\n"
      "twbg_queue_depth_bucket{le=\"4\"} 2\n"
      "twbg_queue_depth_bucket{le=\"8\"} 3\n"
      "twbg_queue_depth_bucket{le=\"+Inf\"} 3\n"
      "twbg_queue_depth_sum 9\n"
      "twbg_queue_depth_count 3\n";
  EXPECT_NE(text.find(kDepthBlock), std::string::npos) << text;

  // Custom prefix is honored everywhere.
  const std::string custom = obs::ToPrometheusText(observer, "mydb");
  EXPECT_EQ(custom.find("twbg_"), std::string::npos);
  EXPECT_NE(custom.find("mydb_wait_time_ticks_count 3"), std::string::npos);
}

// Structural invariants, checked by parsing the exposition line by line.
TEST(PrometheusGoldenTest, EveryMetricIsWellFormed) {
  const std::string text = obs::ToPrometheusText(MakeObserver());
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_FALSE(lines.empty());

  const char* kHistograms[] = {
      "twbg_wait_time_ticks", "twbg_pass_duration_ns",
      "twbg_step1_duration_ns", "twbg_step2_duration_ns",
      "twbg_queue_depth", "twbg_cycle_length",
      "twbg_snapshot_publish_ns", "twbg_snapshot_lag_ns",
      "twbg_detection_period",
  };
  for (const char* metric : kHistograms) {
    const std::string help = std::string("# HELP ") + metric + " ";
    const std::string type = std::string("# TYPE ") + metric + " histogram";
    size_t help_at = text.npos, type_at = text.npos;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind(help, 0) == 0) help_at = i;
      if (lines[i] == type) type_at = i;
    }
    ASSERT_NE(help_at, text.npos) << metric;
    ASSERT_NE(type_at, text.npos) << metric;
    EXPECT_EQ(type_at, help_at + 1) << metric << ": TYPE must follow HELP";
    // HELP text is non-empty and ends with a period.
    const std::string help_text = lines[help_at].substr(help.size());
    EXPECT_FALSE(help_text.empty()) << metric;
    EXPECT_EQ(help_text.back(), '.') << metric;

    // Walk this metric's samples: cumulative buckets, terminal +Inf,
    // then _sum and _count.
    const std::string bucket_prefix = std::string(metric) + "_bucket{le=\"";
    uint64_t prev = 0, inf_value = 0, count_value = 0;
    bool saw_inf = false, saw_sum = false, saw_count = false;
    for (size_t i = type_at + 1; i < lines.size(); ++i) {
      const std::string& l = lines[i];
      if (l.rfind("# ", 0) == 0) break;  // next metric
      const uint64_t sample_value = std::strtoull(
          l.substr(l.find_last_of(' ') + 1).c_str(), nullptr, 10);
      if (l.rfind(bucket_prefix, 0) == 0) {
        EXPECT_FALSE(saw_inf) << metric << ": bucket after +Inf: " << l;
        const bool is_inf =
            l.find("le=\"+Inf\"") != std::string::npos;
        EXPECT_GE(sample_value, prev) << metric << ": not cumulative: " << l;
        prev = sample_value;
        if (is_inf) {
          saw_inf = true;
          inf_value = sample_value;
        }
      } else if (l.rfind(std::string(metric) + "_sum ", 0) == 0) {
        saw_sum = true;
      } else if (l.rfind(std::string(metric) + "_count ", 0) == 0) {
        saw_count = true;
        count_value = sample_value;
      }
    }
    EXPECT_TRUE(saw_inf) << metric << ": no terminal +Inf bucket";
    EXPECT_TRUE(saw_sum) << metric << ": no _sum";
    EXPECT_TRUE(saw_count) << metric << ": no _count";
    EXPECT_EQ(inf_value, count_value)
        << metric << ": +Inf bucket must equal _count";
  }
}

TEST(PrometheusGoldenTest, RetunesExposePeriodHistogramAndGauge) {
  obs::LatencyObserver observer = MakeObserver();
  // No retune observed yet: histogram is present (empty), gauge is not.
  const std::string before = obs::ToPrometheusText(observer);
  EXPECT_NE(before.find("twbg_detection_period_bucket{le=\"+Inf\"} 0"),
            std::string::npos)
      << before;
  EXPECT_EQ(before.find("twbg_detection_period_current"), std::string::npos);

  Event retune;
  retune.kind = EventKind::kPeriodRetuned;
  retune.a = 100;  // old period
  retune.b = 200;  // new period
  observer.OnEvent(retune);
  retune.a = 200;
  retune.b = 50;
  observer.OnEvent(retune);

  const std::string text = obs::ToPrometheusText(observer);
  // Both retuned periods land in the histogram; the gauge tracks the
  // latest one.
  EXPECT_NE(text.find("twbg_detection_period_sum 250"), std::string::npos)
      << text;
  EXPECT_NE(text.find("twbg_detection_period_count 2"), std::string::npos);
  const char kGaugeBlock[] =
      "# HELP twbg_detection_period_current The detection period currently "
      "in effect, host time units.\n"
      "# TYPE twbg_detection_period_current gauge\n"
      "twbg_detection_period_current 50\n";
  EXPECT_NE(text.find(kGaugeBlock), std::string::npos) << text;
}

TEST(PrometheusGoldenTest, EmptyObserverStillExposesEveryHistogram) {
  obs::LatencyObserver observer;
  const std::string text = obs::ToPrometheusText(observer);
  // No samples: each histogram is just the +Inf bucket, zero sum/count.
  EXPECT_NE(text.find("twbg_cycle_length_bucket{le=\"+Inf\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("twbg_cycle_length_sum 0"), std::string::npos);
  EXPECT_NE(text.find("twbg_cycle_length_count 0"), std::string::npos);
  // And no counter samples at all (header only).
  EXPECT_EQ(text.find("twbg_events_total{"), std::string::npos);
}

}  // namespace
}  // namespace twbg
