// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The offline trace path end to end: JSON round-trips through
// ToJson/ParseTraceLine (including adversarial detail strings), the
// trace-file reader's error reporting, and the twbg-trace CLI — which
// must reconstruct Example 4.1's T8/T9 wait chain and the TDR-2
// repositioning rationale from a streamed JSONL trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/script.h"
#include "obs/event.h"
#include "obs/trace_reader.h"
#include "tools/twbg_trace.h"

namespace twbg {
namespace {

using obs::Event;
using obs::EventKind;

// -- JSON round-trip -------------------------------------------------------

Event SampleEvent() {
  Event event;
  event.seq = 42;
  event.time = 17;
  event.kind = EventKind::kCyclePostMortem;
  event.tid = 8;
  event.rid = 2;
  event.mode = lock::LockMode::kSIX;
  event.a = 4;
  event.b = 1;
  event.span = 99;
  event.value = 12.5;
  return event;
}

void ExpectRoundTrips(const Event& original) {
  Result<Event> parsed = obs::ParseTraceLine(obs::ToJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->seq, original.seq);
  EXPECT_EQ(parsed->time, original.time);
  EXPECT_EQ(parsed->kind, original.kind);
  EXPECT_EQ(parsed->tid, original.tid);
  EXPECT_EQ(parsed->rid, original.rid);
  EXPECT_EQ(parsed->mode, original.mode);
  EXPECT_EQ(parsed->a, original.a);
  EXPECT_EQ(parsed->b, original.b);
  EXPECT_EQ(parsed->span, original.span);
  EXPECT_DOUBLE_EQ(parsed->value, original.value);
  EXPECT_EQ(parsed->detail, original.detail);
}

TEST(TraceRoundTripTest, PlainEventSurvives) { ExpectRoundTrips(SampleEvent()); }

TEST(TraceRoundTripTest, AdversarialDetailStringsSurvive) {
  const std::string cases[] = {
      "quotes \" inside \"\" and 'single'",
      "back\\slash \\\\ and \\n literal",
      "real newline\nand\ttab\rand carriage",
      std::string("embedded \x01 control \x1f chars"),
      "trailing backslash \\",
      "unicode caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\x92",  // é, →, UTF-8
      "json-looking {\"kind\":\"fake\",\"detail\":\"nested\"}",
      std::string("nul is escaped too: \\u0000 (literal text)"),
  };
  for (const std::string& detail : cases) {
    Event event = SampleEvent();
    event.detail = detail;
    ExpectRoundTrips(event);
  }
}

TEST(TraceRoundTripTest, EscapedLineIsSingleLineJson) {
  Event event = SampleEvent();
  event.detail = "line1\nline2\"quoted\"\\end";
  const std::string json = obs::ToJson(event);
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
}

TEST(TraceRoundTripTest, UnicodeEscapesParse) {
  Result<Event> parsed = obs::ParseTraceLine(
      "{\"schema_version\":2,\"kind\":\"txn_begin\","
      "\"detail\":\"caf\\u00e9 \\u0041\\t\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->detail, "caf\xc3\xa9 A\t");
}

TEST(TraceRoundTripTest, SchemaVersionIsEnforced) {
  // Missing version: the pre-forensics v1 schema must be called out.
  Result<Event> missing =
      obs::ParseTraceLine("{\"seq\":1,\"kind\":\"txn_begin\"}");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("schema_version"),
            std::string::npos);
  // Mismatched version.
  Result<Event> wrong = obs::ParseTraceLine(
      "{\"schema_version\":1,\"kind\":\"txn_begin\"}");
  EXPECT_FALSE(wrong.ok());
}

TEST(TraceRoundTripTest, MalformedLinesAreRejected) {
  const char* bad[] = {
      "",                                          // empty
      "not json",                                  // no object
      "{\"schema_version\":2,\"kind\":\"nope\"}",  // unknown kind
      "{\"schema_version\":2,\"kind\":\"txn_begin\"} trailing",
      "{\"schema_version\":2,\"kind\":\"txn_begin\",\"mode\":\"ZZ\"}",
      "{\"schema_version\":2,\"kind\":\"txn_begin\"",  // unterminated
      "{\"schema_version\":2,\"detail\":\"unterminated",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(obs::ParseTraceLine(line).ok()) << line;
  }
}

// -- trace file reader -----------------------------------------------------

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

TEST(TraceFileTest, BlankLinesSkippedAndBadLinesNumbered) {
  const std::string path = TempPath("twbg_trace_reader.jsonl");
  {
    std::ofstream file(path);
    file << obs::ToJson(SampleEvent()) << "\n";
    file << "\n";  // blank: skipped
    file << obs::ToJson(SampleEvent()) << "\n";
  }
  Result<std::vector<Event>> events = obs::ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status().message();
  EXPECT_EQ(events->size(), 2u);

  {
    std::ofstream file(path);
    file << obs::ToJson(SampleEvent()) << "\n";
    file << "garbage line\n";
  }
  Result<std::vector<Event>> broken = obs::ReadTraceFile(path);
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().message().find(":2"), std::string::npos)
      << broken.status().message();
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileIsNotFound) {
  Result<std::vector<Event>> events =
      obs::ReadTraceFile("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(events.ok());
}

// -- twbg-trace CLI --------------------------------------------------------

// Streams the Example 4.1 scenario through a ScriptRunner into a JSONL
// trace and returns the path (written once, reused by every CLI test).
const std::string& Example41Trace() {
  static const std::string* path = [] {
    auto* p = new std::string(TempPath("twbg_example41.jsonl"));
    std::ifstream scenario(std::string(TWBG_SCENARIO_DIR) +
                           "/example41.twbg");
    std::stringstream script;
    script << scenario.rdbuf();
    core::ScriptRunner runner;
    Status stream = runner.StreamEventsTo(*p);
    if (!stream.ok()) ADD_FAILURE() << stream.message();
    std::string out;
    Status run = runner.ExecuteScript(script.str(), &out);
    if (!run.ok()) ADD_FAILURE() << run.message() << "\n" << out;
    std::string flush_out;
    (void)runner.ExecuteLine("obs", &flush_out);  // flushes the sink
    return p;
  }();
  return *path;
}

TEST(TraceToolTest, ChainsReconstructsExample41WaitChainAndTdr2Rationale) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"chains", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  // The R2 queue of Example 4.1: T8 blocked in X, T9 blocked in IX.
  EXPECT_NE(out.find("T8 blocked X on R2"), std::string::npos) << out;
  EXPECT_NE(out.find("T9 blocked IX on R2"), std::string::npos) << out;
  // Every cycle was resolved by TDR-2; the post-mortem replay carries the
  // repositioning rationale and the wait chain with span ids.
  EXPECT_NE(out.find("cycle 1 resolved"), std::string::npos) << out;
  EXPECT_NE(out.find("repositioned R2"), std::string::npos) << out;
  EXPECT_NE(out.find("TDR-2"), std::string::npos) << out;
  EXPECT_NE(out.find("reposition {T8} on R2"), std::string::npos) << out;
  EXPECT_NE(out.find("chain"), std::string::npos) << out;
  EXPECT_EQ(out.find("no resolved cycles"), std::string::npos) << out;
}

TEST(TraceToolTest, SummaryCountsSpansAndResolutions) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"summary", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("wait spans:"), std::string::npos) << out;
  EXPECT_NE(out.find("by TDR-2 repositioning, 0 by TDR-1 abort"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cycle_post_mortem"), std::string::npos) << out;
}

TEST(TraceToolTest, HotRanksR1AndR2) {
  std::string out, err;
  const int rc = tools::RunTraceTool({"hot", Example41Trace(), "--top=2"},
                                     &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("top 2 resource(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("R1"), std::string::npos) << out;
  EXPECT_NE(out.find("R2"), std::string::npos) << out;
  EXPECT_NE(out.find("tdr2="), std::string::npos) << out;
}

TEST(TraceToolTest, LatencyPrintsPercentileRows) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"latency", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("pass_duration"), std::string::npos) << out;
  EXPECT_NE(out.find("p99="), std::string::npos) << out;
}

TEST(TraceToolTest, DiffComparesTwoTraces) {
  std::string out, err;
  const int rc = tools::RunTraceTool(
      {"diff", Example41Trace(), Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("delta"), std::string::npos) << out;
  EXPECT_NE(out.find("wait p50:"), std::string::npos) << out;
  // Identical traces: every delta is zero.
  EXPECT_EQ(out.find("+1"), std::string::npos) << out;
}

TEST(TraceToolTest, UsageAndErrorExitCodes) {
  std::string out, err;
  EXPECT_EQ(tools::RunTraceTool({}, &out, &err), 1);
  EXPECT_NE(err.find("usage:"), std::string::npos);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"frobnicate", "x.jsonl"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"summary"}, &out, &err), 1);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"hot", Example41Trace(), "--bogus"}, &out,
                                &err),
            1);

  err.clear();
  EXPECT_EQ(
      tools::RunTraceTool({"summary", "/nonexistent/trace.jsonl"}, &out, &err),
      2);
  EXPECT_FALSE(err.empty());

  // A v1 (pre-forensics) trace is a parse failure, not a silent zero.
  const std::string path = TempPath("twbg_v1_trace.jsonl");
  {
    std::ofstream file(path);
    file << "{\"seq\":1,\"kind\":\"txn_begin\"}\n";
  }
  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"summary", path}, &out, &err), 2);
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace twbg
