// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The offline trace path end to end: JSON round-trips through
// ToJson/ParseTraceLine (including adversarial detail strings), the
// trace-file reader's error reporting, and the twbg-trace CLI — which
// must reconstruct Example 4.1's T8/T9 wait chain and the TDR-2
// repositioning rationale from a streamed JSONL trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/script.h"
#include "obs/event.h"
#include "obs/span.h"
#include "obs/span_sinks.h"
#include "obs/trace_reader.h"
#include "tools/twbg_trace.h"

namespace twbg {
namespace {

using obs::Event;
using obs::EventKind;

// -- JSON round-trip -------------------------------------------------------

Event SampleEvent() {
  Event event;
  event.seq = 42;
  event.time = 17;
  event.kind = EventKind::kCyclePostMortem;
  event.tid = 8;
  event.rid = 2;
  event.mode = lock::LockMode::kSIX;
  event.a = 4;
  event.b = 1;
  event.span = 99;
  event.value = 12.5;
  return event;
}

void ExpectRoundTrips(const Event& original) {
  Result<Event> parsed = obs::ParseTraceLine(obs::ToJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->seq, original.seq);
  EXPECT_EQ(parsed->time, original.time);
  EXPECT_EQ(parsed->kind, original.kind);
  EXPECT_EQ(parsed->tid, original.tid);
  EXPECT_EQ(parsed->rid, original.rid);
  EXPECT_EQ(parsed->mode, original.mode);
  EXPECT_EQ(parsed->a, original.a);
  EXPECT_EQ(parsed->b, original.b);
  EXPECT_EQ(parsed->span, original.span);
  EXPECT_DOUBLE_EQ(parsed->value, original.value);
  EXPECT_EQ(parsed->detail, original.detail);
}

TEST(TraceRoundTripTest, PlainEventSurvives) { ExpectRoundTrips(SampleEvent()); }

TEST(TraceRoundTripTest, AdversarialDetailStringsSurvive) {
  const std::string cases[] = {
      "quotes \" inside \"\" and 'single'",
      "back\\slash \\\\ and \\n literal",
      "real newline\nand\ttab\rand carriage",
      std::string("embedded \x01 control \x1f chars"),
      "trailing backslash \\",
      "unicode caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\x92",  // é, →, UTF-8
      "json-looking {\"kind\":\"fake\",\"detail\":\"nested\"}",
      std::string("nul is escaped too: \\u0000 (literal text)"),
  };
  for (const std::string& detail : cases) {
    Event event = SampleEvent();
    event.detail = detail;
    ExpectRoundTrips(event);
  }
}

TEST(TraceRoundTripTest, EscapedLineIsSingleLineJson) {
  Event event = SampleEvent();
  event.detail = "line1\nline2\"quoted\"\\end";
  const std::string json = obs::ToJson(event);
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
}

TEST(TraceRoundTripTest, UnicodeEscapesParse) {
  Result<Event> parsed = obs::ParseTraceLine(
      "{\"schema_version\":2,\"kind\":\"txn_begin\","
      "\"detail\":\"caf\\u00e9 \\u0041\\t\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->detail, "caf\xc3\xa9 A\t");
}

TEST(TraceRoundTripTest, SchemaVersionIsEnforced) {
  // Missing version: the pre-forensics v1 schema must be called out.
  Result<Event> missing =
      obs::ParseTraceLine("{\"seq\":1,\"kind\":\"txn_begin\"}");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("schema_version"),
            std::string::npos);
  // Mismatched version.
  Result<Event> wrong = obs::ParseTraceLine(
      "{\"schema_version\":1,\"kind\":\"txn_begin\"}");
  EXPECT_FALSE(wrong.ok());
}

TEST(TraceRoundTripTest, MalformedLinesAreRejected) {
  const char* bad[] = {
      "",                                          // empty
      "not json",                                  // no object
      "{\"schema_version\":2,\"kind\":\"nope\"}",  // unknown kind
      "{\"schema_version\":2,\"kind\":\"txn_begin\"} trailing",
      "{\"schema_version\":2,\"kind\":\"txn_begin\",\"mode\":\"ZZ\"}",
      "{\"schema_version\":2,\"kind\":\"txn_begin\"",  // unterminated
      "{\"schema_version\":2,\"detail\":\"unterminated",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(obs::ParseTraceLine(line).ok()) << line;
  }
}

// -- trace file reader -----------------------------------------------------

std::string TempPath(const char* name) { return ::testing::TempDir() + name; }

TEST(TraceFileTest, BlankLinesSkippedAndBadLinesNumbered) {
  const std::string path = TempPath("twbg_trace_reader.jsonl");
  {
    std::ofstream file(path);
    file << obs::ToJson(SampleEvent()) << "\n";
    file << "\n";  // blank: skipped
    file << obs::ToJson(SampleEvent()) << "\n";
  }
  Result<std::vector<Event>> events = obs::ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status().message();
  EXPECT_EQ(events->size(), 2u);

  {
    std::ofstream file(path);
    file << obs::ToJson(SampleEvent()) << "\n";
    file << "garbage line\n";
  }
  Result<std::vector<Event>> broken = obs::ReadTraceFile(path);
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().message().find(":2"), std::string::npos)
      << broken.status().message();
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileIsNotFound) {
  Result<std::vector<Event>> events =
      obs::ReadTraceFile("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(events.ok());
}

// -- twbg-trace CLI --------------------------------------------------------

// Streams the Example 4.1 scenario through a ScriptRunner into a JSONL
// trace and returns the path (written once, reused by every CLI test).
const std::string& Example41Trace() {
  static const std::string* path = [] {
    auto* p = new std::string(TempPath("twbg_example41.jsonl"));
    std::ifstream scenario(std::string(TWBG_SCENARIO_DIR) +
                           "/example41.twbg");
    std::stringstream script;
    script << scenario.rdbuf();
    core::ScriptRunner runner;
    Status stream = runner.StreamEventsTo(*p);
    if (!stream.ok()) ADD_FAILURE() << stream.message();
    std::string out;
    Status run = runner.ExecuteScript(script.str(), &out);
    if (!run.ok()) ADD_FAILURE() << run.message() << "\n" << out;
    std::string flush_out;
    (void)runner.ExecuteLine("obs", &flush_out);  // flushes the sink
    return p;
  }();
  return *path;
}

TEST(TraceToolTest, ChainsReconstructsExample41WaitChainAndTdr2Rationale) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"chains", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  // The R2 queue of Example 4.1: T8 blocked in X, T9 blocked in IX.
  EXPECT_NE(out.find("T8 blocked X on R2"), std::string::npos) << out;
  EXPECT_NE(out.find("T9 blocked IX on R2"), std::string::npos) << out;
  // Every cycle was resolved by TDR-2; the post-mortem replay carries the
  // repositioning rationale and the wait chain with span ids.
  EXPECT_NE(out.find("cycle 1 resolved"), std::string::npos) << out;
  EXPECT_NE(out.find("repositioned R2"), std::string::npos) << out;
  EXPECT_NE(out.find("TDR-2"), std::string::npos) << out;
  EXPECT_NE(out.find("reposition {T8} on R2"), std::string::npos) << out;
  EXPECT_NE(out.find("chain"), std::string::npos) << out;
  EXPECT_EQ(out.find("no resolved cycles"), std::string::npos) << out;
}

TEST(TraceToolTest, SummaryCountsSpansAndResolutions) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"summary", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("wait spans:"), std::string::npos) << out;
  EXPECT_NE(out.find("by TDR-2 repositioning, 0 by TDR-1 abort"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cycle_post_mortem"), std::string::npos) << out;
}

TEST(TraceToolTest, HotRanksR1AndR2) {
  std::string out, err;
  const int rc = tools::RunTraceTool({"hot", Example41Trace(), "--top=2"},
                                     &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("top 2 resource(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("R1"), std::string::npos) << out;
  EXPECT_NE(out.find("R2"), std::string::npos) << out;
  EXPECT_NE(out.find("tdr2="), std::string::npos) << out;
}

// Regression: the hot and chains reports accumulate per-rid rows in a
// hash table whose iteration order tracks insertion, so the ascending-rid
// output contract has to come from an explicit sort at the output
// boundary — feed rids in descending order and require ascending output.
TEST(TraceToolTest, HotAndChainsSortRidsAtOutputBoundary) {
  const std::string path = TempPath("twbg_rid_order.jsonl");
  {
    std::ofstream file(path);
    uint64_t span = 0;
    for (lock::ResourceId rid : {30u, 7u, 19u}) {
      Event block;
      block.kind = EventKind::kLockBlock;
      block.time = ++span;  // distinct, monotone
      block.tid = 100 + rid;
      block.rid = rid;
      block.mode = lock::LockMode::kX;
      block.span = span;
      file << obs::ToJson(block) << "\n";  // never closed: stays open
    }
  }
  // Equal blocked-span counts everywhere, so `hot` ranks purely by rid.
  std::string out, err;
  ASSERT_EQ(tools::RunTraceTool({"hot", path}, &out, &err), 0) << err;
  const size_t hot7 = out.find("R7 ");
  const size_t hot19 = out.find("R19 ");
  const size_t hot30 = out.find("R30 ");
  ASSERT_NE(hot7, std::string::npos) << out;
  ASSERT_NE(hot19, std::string::npos) << out;
  ASSERT_NE(hot30, std::string::npos) << out;
  EXPECT_LT(hot7, hot19) << out;
  EXPECT_LT(hot19, hot30) << out;

  out.clear();
  ASSERT_EQ(tools::RunTraceTool({"chains", path}, &out, &err), 0) << err;
  const size_t open_section = out.find("open waits by resource:");
  ASSERT_NE(open_section, std::string::npos) << out;
  const size_t chain7 = out.find("R7 <-", open_section);
  const size_t chain19 = out.find("R19 <-", open_section);
  const size_t chain30 = out.find("R30 <-", open_section);
  ASSERT_NE(chain7, std::string::npos) << out;
  ASSERT_NE(chain19, std::string::npos) << out;
  ASSERT_NE(chain30, std::string::npos) << out;
  EXPECT_LT(chain7, chain19) << out;
  EXPECT_LT(chain19, chain30) << out;
  std::remove(path.c_str());
}

TEST(TraceToolTest, LatencyPrintsPercentileRows) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"latency", Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("pass_duration"), std::string::npos) << out;
  EXPECT_NE(out.find("p99="), std::string::npos) << out;
}

TEST(TraceToolTest, DiffComparesTwoTraces) {
  std::string out, err;
  const int rc = tools::RunTraceTool(
      {"diff", Example41Trace(), Example41Trace()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("delta"), std::string::npos) << out;
  EXPECT_NE(out.find("wait p50:"), std::string::npos) << out;
  // Identical traces: every delta is zero.
  EXPECT_EQ(out.find("+1"), std::string::npos) << out;
}

// Writes a small span JSONL file (the --spans-out stream) once for the
// span-subcommand tests: one labelled txn, one granted + one aborted
// wait, one pass.
const std::string& SpanFixture() {
  static const std::string* path = [] {
    auto* p = new std::string(TempPath("twbg_span_fixture.jsonl"));
    Result<std::unique_ptr<obs::SpanJsonlSink>> sink =
        obs::SpanJsonlSink::Open(*p);
    if (!sink.ok()) ADD_FAILURE() << sink.status().ToString();
    obs::SpanTracer tracer;
    tracer.Subscribe(sink->get());
    tracer.set_time(0);
    tracer.OpenTxn(1, "fixture");
    tracer.OpenWait(1, 1, 10, lock::LockMode::kX);
    tracer.OpenWait(2, 2, 10, lock::LockMode::kS);
    const uint64_t pass = tracer.Open(obs::SpanKind::kPass);
    tracer.set_time(500);
    tracer.Close(pass, 1, 400);
    tracer.CloseWait(1, obs::WaitOutcome::kGranted);
    tracer.CloseWait(2, obs::WaitOutcome::kAborted);
    tracer.CloseTxn(1);
    (*sink)->Flush();
    return p;
  }();
  return *path;
}

TEST(TraceToolTest, ExportPerfettoRendersSpanFile) {
  std::string out, err;
  const int rc =
      tools::RunTraceTool({"export-perfetto", SpanFixture()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos) << out;
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"detector\""), std::string::npos) << out;
  EXPECT_NE(out.find("wait R10/X"), std::string::npos) << out;
}

TEST(TraceToolTest, ProfileRendersTableAndFoldedStacks) {
  std::string out, err;
  int rc = tools::RunTraceTool({"profile", SpanFixture()}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("resource"), std::string::npos) << out;
  EXPECT_NE(out.find("fixture"), std::string::npos) << out;
  EXPECT_NE(out.find("unclassified"), std::string::npos) << out;

  out.clear();
  rc = tools::RunTraceTool({"profile", SpanFixture(), "--folded"}, &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("R10;X;fixture 500\n"), std::string::npos) << out;
  EXPECT_NE(out.find("R10;S;unclassified 500\n"), std::string::npos) << out;
}

TEST(TraceToolTest, ExitCodesArePinnedForEverySubcommand) {
  // Exit-code contract (also in tools/twbg_trace.h): 0 success, 1 bad
  // usage, 2 unreadable input.  Pinned per subcommand so a regression in
  // any dispatch branch is caught here, not by a CI script.
  struct Case {
    const char* cmd;
    bool span_input;  // reads the span fixture instead of an event trace
  };
  const Case cases[] = {
      {"summary", false},        {"chains", false},
      {"hot", false},            {"latency", false},
      {"export-perfetto", true}, {"profile", true},
  };
  for (const Case& c : cases) {
    std::string out, err;
    EXPECT_EQ(tools::RunTraceTool(
                  {c.cmd, c.span_input ? SpanFixture() : Example41Trace()},
                  &out, &err),
              0)
        << c.cmd << ": " << err;
    // Missing the input argument is usage (1), not a read error.
    out.clear();
    err.clear();
    EXPECT_EQ(tools::RunTraceTool({c.cmd}, &out, &err), 1) << c.cmd;
    EXPECT_NE(err.find("usage:"), std::string::npos) << c.cmd;
    // An unreadable input is 2.
    out.clear();
    err.clear();
    EXPECT_EQ(tools::RunTraceTool({c.cmd, "/nonexistent/in.jsonl"}, &out,
                                  &err),
              2)
        << c.cmd;
  }
  // diff: 0 on two readable traces, 1 on wrong arity, 2 on a bad file.
  std::string out, err;
  EXPECT_EQ(tools::RunTraceTool({"diff", Example41Trace(), Example41Trace()},
                                &out, &err),
            0)
      << err;
  EXPECT_EQ(tools::RunTraceTool({"diff", Example41Trace()}, &out, &err), 1);
  EXPECT_EQ(tools::RunTraceTool(
                {"diff", Example41Trace(), "/nonexistent/in.jsonl"}, &out,
                &err),
            2);
}

TEST(TraceToolTest, SpanSubcommandErrorsAreConsistent) {
  // Feeding an event trace to a span subcommand is a read error (2) with
  // the schema named — the two streams are deliberately incompatible.
  std::string out, err;
  EXPECT_EQ(tools::RunTraceTool({"profile", Example41Trace()}, &out, &err),
            2);
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
  // Unknown option: usage error naming the option.
  out.clear();
  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"profile", SpanFixture(), "--bogus"}, &out,
                                &err),
            1);
  EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
  // --folded belongs to profile alone.
  out.clear();
  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"export-perfetto", SpanFixture(), "--folded"},
                                &out, &err),
            1);
}

TEST(TraceToolTest, UnknownSubcommandNamesItself) {
  for (const char* bogus : {"frobnicate", "exportperfetto", "Profile"}) {
    std::string out, err;
    EXPECT_EQ(tools::RunTraceTool({bogus, Example41Trace()}, &out, &err), 1);
    EXPECT_NE(err.find(std::string("unknown command '") + bogus + "'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("usage:"), std::string::npos);
  }
}

TEST(TraceToolTest, UsageAndErrorExitCodes) {
  std::string out, err;
  EXPECT_EQ(tools::RunTraceTool({}, &out, &err), 1);
  EXPECT_NE(err.find("usage:"), std::string::npos);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"frobnicate", "x.jsonl"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"summary"}, &out, &err), 1);

  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"hot", Example41Trace(), "--bogus"}, &out,
                                &err),
            1);

  err.clear();
  EXPECT_EQ(
      tools::RunTraceTool({"summary", "/nonexistent/trace.jsonl"}, &out, &err),
      2);
  EXPECT_FALSE(err.empty());

  // A v1 (pre-forensics) trace is a parse failure, not a silent zero.
  const std::string path = TempPath("twbg_v1_trace.jsonl");
  {
    std::ofstream file(path);
    file << "{\"seq\":1,\"kind\":\"txn_begin\"}\n";
  }
  err.clear();
  EXPECT_EQ(tools::RunTraceTool({"summary", path}, &out, &err), 2);
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace twbg
