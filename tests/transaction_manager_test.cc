// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/oracle.h"

namespace twbg::txn {
namespace {

using enum lock::LockMode;

Status MustAcquire(TransactionManager& tm, lock::TransactionId tid,
                   lock::ResourceId rid, lock::LockMode mode) {
  Status outcome = tm.Acquire(tid, rid, mode);
  EXPECT_TRUE(outcome.ok() || outcome.IsWouldBlock() ||
              outcome.IsDeadlockVictim())
      << outcome.ToString();
  return outcome;
}

TEST(TransactionManagerTest, BeginAssignsFreshIds) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  EXPECT_NE(a, b);
  EXPECT_EQ(*tm.State(a), TxnState::kActive);
  EXPECT_EQ(*tm.State(b), TxnState::kActive);
  EXPECT_EQ(tm.NumLive(), 2u);
}

TEST(TransactionManagerTest, CommitReleasesAndUnblocks) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  EXPECT_TRUE(MustAcquire(tm, a, 1, kX).ok());
  EXPECT_TRUE(MustAcquire(tm, b, 1, kS).IsWouldBlock());
  EXPECT_EQ(*tm.State(b), TxnState::kBlocked);
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_EQ(*tm.State(a), TxnState::kCommitted);
  EXPECT_EQ(*tm.State(b), TxnState::kActive);  // granted by the release
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

TEST(TransactionManagerTest, BlockedTransactionCannotCommitOrRequest) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  MustAcquire(tm, a, 1, kX);
  MustAcquire(tm, b, 1, kX);
  EXPECT_TRUE(tm.Commit(b).IsFailedPrecondition());
  EXPECT_TRUE(tm.Acquire(b, 2, kS).IsFailedPrecondition());
}

TEST(TransactionManagerTest, AbortReleasesQueuePosition) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  lock::TransactionId c = *tm.Begin();
  MustAcquire(tm, a, 1, kX);
  MustAcquire(tm, b, 1, kX);
  MustAcquire(tm, c, 1, kS);
  ASSERT_TRUE(tm.Abort(b).ok());  // aborting the queue front
  EXPECT_EQ(*tm.State(b), TxnState::kAborted);
  EXPECT_FALSE(tm.Find(b)->deadlock_victim);  // voluntary abort
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_EQ(*tm.State(c), TxnState::kActive);
}

TEST(TransactionManagerTest, TerminatedTransactionsRejectOperations) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_TRUE(tm.Commit(a).IsFailedPrecondition());
  EXPECT_TRUE(tm.Abort(a).IsFailedPrecondition());
  EXPECT_TRUE(tm.Acquire(a, 1, kS).IsFailedPrecondition());
  EXPECT_TRUE(tm.State(99).status().IsNotFound());
}

TEST(TransactionManagerTest, PeriodicDetectionResolvesDeadlock) {
  TransactionManager tm;
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  MustAcquire(tm, a, 1, kX);
  MustAcquire(tm, b, 2, kX);
  MustAcquire(tm, a, 2, kX);
  MustAcquire(tm, b, 1, kX);  // deadlock
  core::ResolutionReport report = tm.RunDetection();
  ASSERT_EQ(report.aborted.size(), 1u);
  lock::TransactionId victim = report.aborted[0];
  lock::TransactionId survivor = victim == a ? b : a;
  EXPECT_EQ(*tm.State(victim), TxnState::kAborted);
  EXPECT_TRUE(tm.Find(victim)->deadlock_victim);
  EXPECT_EQ(*tm.State(survivor), TxnState::kActive);
  EXPECT_FALSE(core::AnalyzeByReduction(tm.lock_manager().table()).deadlocked);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

TEST(TransactionManagerTest, ContinuousModeAbortsVictimInline) {
  TransactionManagerOptions options;
  options.detection_mode = DetectionMode::kContinuous;
  options.cost_policy = CostPolicy::kUnit;
  TransactionManager tm(options);
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  MustAcquire(tm, a, 1, kX);
  MustAcquire(tm, b, 2, kX);
  MustAcquire(tm, a, 2, kX);
  // b's request closes the cycle; with unit costs the junction tie-break
  // picks the lower id (a) as victim, so b gets granted instead.
  Status outcome = MustAcquire(tm, b, 1, kX);
  if (outcome.IsDeadlockVictim()) {
    EXPECT_EQ(*tm.State(b), TxnState::kAborted);
    EXPECT_EQ(*tm.State(a), TxnState::kActive);
  } else {
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(*tm.State(a), TxnState::kAborted);
    EXPECT_EQ(*tm.State(b), TxnState::kActive);
  }
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

TEST(TransactionManagerTest, CostPolicies) {
  for (CostPolicy policy : {CostPolicy::kUnit, CostPolicy::kLocksHeld,
                            CostPolicy::kAge, CostPolicy::kOpsDone}) {
    TransactionManagerOptions options;
    options.cost_policy = policy;
    TransactionManager tm(options);
    lock::TransactionId a = *tm.Begin();
    lock::TransactionId b = *tm.Begin();
    MustAcquire(tm, a, 1, kS);
    MustAcquire(tm, a, 2, kS);
    MustAcquire(tm, a, 3, kS);
    MustAcquire(tm, b, 4, kS);
    switch (policy) {
      case CostPolicy::kUnit:
        EXPECT_DOUBLE_EQ(tm.costs().Get(a), tm.costs().Get(b));
        break;
      case CostPolicy::kLocksHeld:
      case CostPolicy::kOpsDone:
        EXPECT_GT(tm.costs().Get(a), tm.costs().Get(b));
        break;
      case CostPolicy::kAge:
        EXPECT_GT(tm.costs().Get(a), tm.costs().Get(b));  // a began earlier
        break;
    }
  }
}

TEST(TransactionManagerTest, LocksHeldPolicyDrivesVictimChoice) {
  TransactionManagerOptions options;
  options.cost_policy = CostPolicy::kLocksHeld;
  TransactionManager tm(options);
  lock::TransactionId rich = *tm.Begin();
  lock::TransactionId poor = *tm.Begin();
  // `rich` accumulates locks; `poor` holds one.
  for (lock::ResourceId rid = 10; rid < 20; ++rid) {
    MustAcquire(tm, rich, rid, kS);
  }
  MustAcquire(tm, rich, 1, kX);
  MustAcquire(tm, poor, 2, kX);
  MustAcquire(tm, rich, 2, kX);
  MustAcquire(tm, poor, 1, kX);  // deadlock
  core::ResolutionReport report = tm.RunDetection();
  ASSERT_EQ(report.aborted.size(), 1u);
  EXPECT_EQ(report.aborted[0], poor);
}

TEST(TransactionManagerTest, RandomizedLifecycleInvariants) {
  common::Rng rng(31337);
  for (int round = 0; round < 20; ++round) {
    TransactionManagerOptions options;
    options.detection_mode = rng.NextBernoulli(0.5)
                                 ? DetectionMode::kContinuous
                                 : DetectionMode::kPeriodic;
    TransactionManager tm(options);
    std::vector<lock::TransactionId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(*tm.Begin());
    for (int op = 0; op < 150; ++op) {
      lock::TransactionId tid = rng.Pick(pool);
      Result<TxnState> state = tm.State(tid);
      ASSERT_TRUE(state.ok());
      if (*state == TxnState::kActive && rng.NextBernoulli(0.1)) {
        ASSERT_TRUE(tm.Commit(tid).ok());
      } else if (*state == TxnState::kActive) {
        (void)tm.Acquire(tid,
                         static_cast<lock::ResourceId>(rng.NextInRange(1, 4)),
                         lock::kRealModes[rng.NextBelow(5)]);
      } else if (*state == TxnState::kBlocked && rng.NextBernoulli(0.2)) {
        ASSERT_TRUE(tm.Abort(tid).ok());
      }
      if (op % 10 == 0 &&
          options.detection_mode == DetectionMode::kPeriodic) {
        tm.RunDetection();
      }
      // Replace terminated transactions to keep the pool live.
      for (auto& t : pool) {
        if (tm.Find(t)->terminated()) t = *tm.Begin();
      }
      Status invariants = tm.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    }
  }
}

TEST(TransactionStateTest, ToString) {
  EXPECT_EQ(ToString(TxnState::kActive), "Active");
  EXPECT_EQ(ToString(TxnState::kBlocked), "Blocked");
  EXPECT_EQ(ToString(TxnState::kCommitted), "Committed");
  EXPECT_EQ(ToString(TxnState::kAborted), "Aborted");
}

}  // namespace
}  // namespace twbg::txn
