// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The closed-loop detection scheduler: option validation, the fixed
// policy's zero-diff guarantee, the EWMA square-root rule's clamps /
// hysteresis / slew / burst snap-down, determinism of the retune
// sequence, and the controller threaded through the simulator and the
// concurrent service.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "baselines/factory.h"
#include "obs/sinks.h"
#include "obs/span.h"
#include "obs/span_sinks.h"
#include "sched/period_controller.h"
#include "sim/simulator.h"
#include "txn/concurrent_service.h"

namespace twbg {
namespace {

constexpr lock::LockMode kX = lock::LockMode::kX;

// SimMetrics::ToString with the one wall-clock field (det_ms) blanked
// out, so byte-for-byte comparisons only see deterministic state.
std::string DeterministicMetrics(const sim::SimMetrics& metrics) {
  std::string text = metrics.ToString();
  const size_t begin = text.find("det_ms=");
  if (begin == std::string::npos) return text;
  const size_t end = text.find(' ', begin);
  return text.replace(begin, end - begin, "det_ms=X");
}

sched::PassSample Sample(uint64_t elapsed, uint64_t cycles, double cost) {
  sched::PassSample sample;
  sample.elapsed = elapsed;
  sample.cycles_resolved = cycles;
  sample.detection_cost = cost;
  return sample;
}

TEST(SchedulerOptionsTest, ValidateAcceptsDefaultsAndRejectsBadKnobs) {
  sched::SchedulerOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  EXPECT_TRUE(options.Validate().ok());

  sched::SchedulerOptions bad = options;
  bad.min_period = 0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.min_period = 10;
  bad.max_period = 5;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.ewma_alpha = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad.ewma_alpha = 1.5;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.detection_cost_weight = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.persistence_weight = -1.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.hysteresis = -0.1;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = options;
  bad.max_raise_factor = 0.5;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(PeriodControllerTest, FixedPolicyNeverMoves) {
  sched::SchedulerOptions options;  // kFixedPeriod
  auto controller = sched::MakePeriodController(options, 42);
  EXPECT_EQ(controller->period(), 42u);
  EXPECT_EQ(controller->name(), "fixed");
  for (int i = 0; i < 50; ++i) {
    // Wildly varying samples: a fixed controller must ignore them all.
    EXPECT_FALSE(
        controller->OnPassComplete(Sample(1 + i, i % 7, 1e6 * i)).has_value());
    EXPECT_EQ(controller->period(), 42u);
  }
}

TEST(PeriodControllerTest, BurstClampsAtMinPeriodImmediately) {
  sched::SchedulerOptions options;
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  options.min_period = 5;
  options.max_period = 1000;
  auto controller = sched::MakePeriodController(options, 50);
  // 100 cycles in 10 time units at negligible cost: T* collapses below
  // min_period, and because the pass resolved cycles the downward move is
  // immediate (no deadband, no slew).
  auto retune = controller->OnPassComplete(Sample(10, 100, 0.001));
  ASSERT_TRUE(retune.has_value());
  EXPECT_EQ(retune->old_period, 50u);
  EXPECT_EQ(retune->new_period, 5u);
  EXPECT_GT(retune->deadlock_rate, 0.0);
  EXPECT_EQ(controller->period(), 5u);
}

TEST(PeriodControllerTest, QuietSystemClimbsGeometricallyToAutoMax) {
  sched::SchedulerOptions options;
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  options.min_period = 1;  // max_period = 0 -> auto: 16 * initial = 160
  auto controller = sched::MakePeriodController(options, 10);
  std::vector<uint64_t> periods;
  for (int i = 0; i < 8; ++i) {
    auto retune = controller->OnPassComplete(Sample(10, 0, 100.0));
    if (retune.has_value()) periods.push_back(retune->new_period);
  }
  // Zero deadlocks: the target is the ceiling outright, but the slew cap
  // (max_raise_factor = 2) doubles at most per pass, then the controller
  // goes quiet at the ceiling.
  EXPECT_EQ(periods, (std::vector<uint64_t>{20, 40, 80, 160}));
  EXPECT_EQ(controller->period(), 160u);
  EXPECT_FALSE(controller->OnPassComplete(Sample(10, 0, 100.0)).has_value());
}

TEST(PeriodControllerTest, HysteresisHoldsPeriodUnderOscillatingLoad) {
  sched::SchedulerOptions options;
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  options.min_period = 1;
  options.max_period = 1000;
  options.ewma_alpha = 1.0;  // pure instantaneous: targets are exact
  options.hysteresis = 0.25;
  auto controller = sched::MakePeriodController(options, 100);
  // With alpha=1, elapsed=1 and one cycle per pass: rate = 1, so
  // T* = sqrt(2 * cost).  cost 6050 -> 110, cost 7200 -> 120: both inside
  // the 25% deadband above 100, so an oscillating load never thrashes.
  for (int i = 0; i < 20; ++i) {
    const double cost = (i % 2 == 0) ? 6050.0 : 7200.0;
    EXPECT_FALSE(controller->OnPassComplete(Sample(1, 1, cost)).has_value());
    EXPECT_EQ(controller->period(), 100u);
  }
  // cost 8450 -> T* = 130: clears the deadband and moves (under the slew
  // cap of 200).
  auto retune = controller->OnPassComplete(Sample(1, 1, 8450.0));
  ASSERT_TRUE(retune.has_value());
  EXPECT_EQ(retune->new_period, 130u);
}

TEST(PeriodControllerTest, SnapsDownWithinTwoPassesOfABurst) {
  sched::SchedulerOptions options;
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  options.min_period = 2;
  options.max_period = 320;
  auto controller = sched::MakePeriodController(options, 20);
  // A long quiet spell parks the period at the ceiling and pushes the
  // EWMA rate to ~0.
  for (int i = 0; i < 12; ++i) {
    (void)controller->OnPassComplete(Sample(20, 0, 50.0));
  }
  EXPECT_EQ(controller->period(), 320u);
  // First pass that sees the burst: the instantaneous-rate floor prices
  // this pass's own rate even though the EWMA barely moved, and the
  // cycle-bearing downward move is immediate — the period lands near the
  // floor on this very retune, well within the two-pass requirement.
  auto retune = controller->OnPassComplete(Sample(320, 64, 50.0));
  ASSERT_TRUE(retune.has_value());
  EXPECT_EQ(retune->old_period, 320u);
  EXPECT_LE(retune->new_period, 30u);
  EXPECT_LE(controller->period(), 30u);
}

TEST(PeriodControllerTest, RetuneSequenceIsDeterministic) {
  sched::SchedulerOptions options;
  options.policy = sched::SchedulerPolicy::kEwmaRate;
  options.min_period = 2;
  options.max_period = 500;
  auto a = sched::MakePeriodController(options, 25);
  auto b = sched::MakePeriodController(options, 25);
  std::vector<std::pair<uint64_t, uint64_t>> retunes_a;
  std::vector<std::pair<uint64_t, uint64_t>> retunes_b;
  for (int i = 0; i < 200; ++i) {
    // A synthetic but fully reproducible load: bursts every 17 passes,
    // cost wobbling with a period of 5.
    const uint64_t cycles = (i % 17 == 0) ? 8 : (i % 3 == 0 ? 1 : 0);
    const double cost = 200.0 + 40.0 * static_cast<double>(i % 5);
    const uint64_t elapsed = std::max<uint64_t>(a->period(), 1);
    if (auto r = a->OnPassComplete(Sample(elapsed, cycles, cost))) {
      retunes_a.emplace_back(r->old_period, r->new_period);
    }
    if (auto r = b->OnPassComplete(Sample(elapsed, cycles, cost))) {
      retunes_b.emplace_back(r->old_period, r->new_period);
    }
  }
  EXPECT_FALSE(retunes_a.empty());
  EXPECT_EQ(retunes_a, retunes_b);
  EXPECT_EQ(a->period(), b->period());
}

// -- simulator integration --

sim::SimConfig DeadlockProneConfig() {
  sim::SimConfig config;
  config.workload.seed = 21;
  config.workload.num_transactions = 80;
  config.workload.concurrency = 6;
  config.workload.num_resources = 5;
  config.workload.mode_weights = {0, 0, 0.2, 0, 0.8};
  config.detection_period = 5;
  config.record_trace = true;
  return config;
}

TEST(SchedSimulatorTest, ExternalFixedControllerIsByteIdenticalToNoController) {
  // The same workload, once on the historical modulo schedule and once
  // through an explicitly attached fixed controller: every metric and
  // every trace byte must match — opting into the scheduling layer with
  // the fixed policy is a zero-diff change.
  sim::SimConfig plain = DeadlockProneConfig();
  sim::Simulator sim_plain(plain, baselines::MakeStrategy("hwtwbg-periodic"));
  sim::SimMetrics m_plain = sim_plain.Run();

  sim::SimConfig fixed = DeadlockProneConfig();
  sched::SchedulerOptions options;  // kFixedPeriod
  auto controller =
      sched::MakePeriodController(options, fixed.detection_period);
  fixed.period_controller = controller.get();
  sim::Simulator sim_fixed(fixed, baselines::MakeStrategy("hwtwbg-periodic"));
  sim::SimMetrics m_fixed = sim_fixed.Run();

  EXPECT_EQ(m_fixed.period_retunes, 0u);
  EXPECT_EQ(DeterministicMetrics(m_plain), DeterministicMetrics(m_fixed));
  EXPECT_EQ(sim_plain.trace().ToString(), sim_fixed.trace().ToString());
}

TEST(SchedSimulatorTest, EwmaRunsAreDeterministicAndRetune) {
  auto run = [](sim::SimMetrics* metrics, std::string* trace) {
    sim::SimConfig config = DeadlockProneConfig();
    config.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
    config.scheduler.min_period = 2;
    config.scheduler.max_period = 64;
    sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
    *metrics = sim.Run();
    *trace = sim.trace().ToString();
  };
  sim::SimMetrics m1, m2;
  std::string t1, t2;
  run(&m1, &t1);
  run(&m2, &t2);
  EXPECT_GT(m1.period_retunes, 0u);
  EXPECT_GE(m1.min_detection_period, 2u);
  EXPECT_LE(m1.max_detection_period, 64u);
  EXPECT_EQ(DeterministicMetrics(m1), DeterministicMetrics(m2));
  EXPECT_EQ(m1.period_retunes, m2.period_retunes);
  EXPECT_EQ(m1.final_detection_period, m2.final_detection_period);
  EXPECT_EQ(t1, t2);
}

TEST(SchedSimulatorTest, AdaptivePolicyRequiresAPeriod) {
  sim::SimConfig config = DeadlockProneConfig();
  config.detection_period = 0;
  config.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  auto sim = sim::Simulator::Create(config,
                                    baselines::MakeStrategy("hwtwbg-periodic"));
  EXPECT_TRUE(sim.status().IsInvalidArgument());
}

TEST(SchedSimulatorTest, SpanEstimatesRequireATracer) {
  sim::SimConfig config = DeadlockProneConfig();
  config.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  config.scheduler.use_span_estimates = true;  // but no span_tracer
  auto sim = sim::Simulator::Create(config,
                                    baselines::MakeStrategy("hwtwbg-periodic"));
  EXPECT_TRUE(sim.status().IsInvalidArgument());
}

TEST(SchedSimulatorTest, TracerWithEstimatesOffIsByteIdentical) {
  // Differential parity: a span tracer recording the run, with
  // use_span_estimates left off, must not perturb the scheduler — the
  // flag, not the tracer, selects the measured input path.
  sim::SimConfig plain = DeadlockProneConfig();
  plain.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  plain.scheduler.min_period = 2;
  plain.scheduler.max_period = 64;
  sim::Simulator sim_plain(plain, baselines::MakeStrategy("hwtwbg-periodic"));
  sim::SimMetrics m_plain = sim_plain.Run();

  obs::SpanTracer tracer;
  obs::SpanCollectorSink spans;
  tracer.Subscribe(&spans);
  sim::SimConfig traced = DeadlockProneConfig();
  traced.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  traced.scheduler.min_period = 2;
  traced.scheduler.max_period = 64;
  traced.span_tracer = &tracer;
  sim::Simulator sim_traced(traced, baselines::MakeStrategy("hwtwbg-periodic"));
  sim::SimMetrics m_traced = sim_traced.Run();

  EXPECT_EQ(DeterministicMetrics(m_plain), DeterministicMetrics(m_traced));
  EXPECT_EQ(sim_plain.trace().ToString(), sim_traced.trace().ToString());
  // The tracer did record the run: pass spans for every strategy
  // invocation, wait spans under the tick clock.
  EXPECT_GT(spans.Count(obs::SpanKind::kPass), 0u);
  EXPECT_GT(spans.Count(obs::SpanKind::kTxn), 0u);
}

TEST(SchedSimulatorTest, SpanEstimatesFeedMeasuredSchedulerInputs) {
  // With use_span_estimates on, lambda comes from closed pass-span cycle
  // counters and B from the blocked-time integral.  The run must stay
  // deterministic (the tick clock drives the spans) and the controller
  // must still retune inside its clamps.
  auto run = [](sim::SimMetrics* metrics, std::string* trace,
                size_t* passes) {
    obs::SpanTracer tracer;
    obs::SpanCollectorSink spans;
    tracer.Subscribe(&spans);
    sim::SimConfig config = DeadlockProneConfig();
    config.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
    config.scheduler.min_period = 2;
    config.scheduler.max_period = 64;
    config.scheduler.use_span_estimates = true;
    config.span_tracer = &tracer;
    sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
    *metrics = sim.Run();
    *trace = sim.trace().ToString();
    *passes = spans.Count(obs::SpanKind::kPass);
    // Span timestamps are tick counts: every pass span is instantaneous
    // (the simulator charges pass cost in work units, not ticks).
    for (const obs::Span& span : spans.Filter(obs::SpanKind::kPass)) {
      EXPECT_EQ(span.duration(), 0u);
    }
  };
  sim::SimMetrics m1, m2;
  std::string t1, t2;
  size_t p1 = 0, p2 = 0;
  run(&m1, &t1, &p1);
  run(&m2, &t2, &p2);
  EXPECT_GT(m1.period_retunes, 0u);
  EXPECT_GE(m1.min_detection_period, 2u);
  EXPECT_LE(m1.max_detection_period, 64u);
  EXPECT_GT(p1, 0u);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(DeterministicMetrics(m1), DeterministicMetrics(m2));
  EXPECT_EQ(t1, t2);
}

// -- concurrent service integration --

// Builds a certain 2-transaction deadlock, resolves it with a manual
// pass, and returns the pass report rendered to a string.
std::string DeadlockReportFor(txn::ConcurrentLockService& service) {
  std::barrier rendezvous(2);
  std::atomic<int> victims{0};
  std::atomic<lock::TransactionId> tids[2] = {};
  std::string report_text;
  auto runner = [&](size_t index, lock::ResourceId first,
                    lock::ResourceId second) {
    lock::TransactionId t = *service.Begin();
    tids[index].store(t, std::memory_order_relaxed);
    ASSERT_TRUE(service.AcquireBlocking(t, first, kX).ok());
    rendezvous.arrive_and_wait();
    Status status = service.AcquireBlocking(t, second, kX);
    if (status.IsAborted()) {
      ++victims;
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(service.Commit(t).ok());
  };
  std::thread a(runner, 0, 1, 2);
  std::thread b(runner, 1, 2, 1);
  // Wait until both sides are actually parked (kBlocked is stored in the
  // same shard critical section that enqueues the wait) before running
  // any pass: a pass that sneaks between the two blocking acquires would
  // warm the graph cache and perturb the report's cache-counter line.
  auto blocked = [&](size_t index) {
    const lock::TransactionId t = tids[index].load(std::memory_order_relaxed);
    if (t == 0) return false;
    Result<txn::TxnState> state = service.State(t);
    return state.ok() && *state == txn::TxnState::kBlocked;
  };
  while (!(blocked(0) && blocked(1))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Both sides blocked on each other: run one pass and read the report.
  while (service.deadlock_victims() == 0) {
    core::ResolutionReport report = service.RunDetectionPass();
    if (report.found_deadlock()) report_text = report.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a.join();
  b.join();
  EXPECT_EQ(victims.load(), 1);
  return report_text;
}

TEST(SchedServiceTest, FixedSchedulerReportsAreByteIdentical) {
  // A service with the scheduling layer engaged (detector thread parked
  // on a huge period, fixed policy) must resolve the same deadlock with
  // a byte-identical ResolutionReport to a service with no controller at
  // all (manual passes, detection_period = 0).
  txn::ConcurrentServiceOptions without;
  without.num_shards = 2;
  without.detection_mode = txn::DetectionMode::kPeriodic;
  without.snapshot_strategy = txn::SnapshotStrategy::kStopTheWorld;
  auto plain = txn::ConcurrentLockService::Create(without);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  const std::string report_plain = DeadlockReportFor(**plain);

  txn::ConcurrentServiceOptions with = without;
  with.detection_period = std::chrono::microseconds(60'000'000);
  with.scheduler.min_period = 1;
  with.scheduler.max_period = 120'000'000;
  auto fixed = txn::ConcurrentLockService::Create(with);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  const std::string report_fixed = DeadlockReportFor(**fixed);

  EXPECT_FALSE(report_fixed.empty());
  EXPECT_EQ(report_plain, report_fixed);
  EXPECT_EQ((*fixed)->period_retunes(), 0u);
  EXPECT_EQ((*fixed)->current_detection_period_us(), 60'000'000u);
  EXPECT_EQ((*plain)->current_detection_period_us(), 0u);
}

TEST(SchedServiceTest, QuietServiceRaisesItsPeriod) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  // Park the thread far in the future; manual passes drive the feedback.
  options.detection_period = std::chrono::microseconds(60'000'000);
  options.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  options.scheduler.min_period = 1'000'000;
  auto service = txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->current_detection_period_us(), 60'000'000u);
  // Deadlock-free passes: the rate estimate stays at zero, so the
  // controller walks the period up toward the ceiling (slew-capped).
  for (int i = 0; i < 4; ++i) {
    (void)(*service)->RunDetectionPass();
  }
  EXPECT_GT((*service)->period_retunes(), 0u);
  EXPECT_GT((*service)->current_detection_period_us(), 60'000'000u);
  EXPECT_LE((*service)->current_detection_period_us(), 16u * 60'000'000u);
}

TEST(SchedServiceTest, AdaptivePolicyRequiresDetectorThread) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  // No detection_period: there is no detector thread to retune.
  auto service = txn::ConcurrentLockService::Create(options);
  EXPECT_TRUE(service.status().IsInvalidArgument());

  txn::ConcurrentServiceOptions continuous;
  continuous.num_shards = 1;
  continuous.detection_mode = txn::DetectionMode::kContinuous;
  continuous.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
  auto service2 = txn::ConcurrentLockService::Create(continuous);
  EXPECT_TRUE(service2.status().IsInvalidArgument());

  txn::ConcurrentServiceOptions bad_knobs;
  bad_knobs.num_shards = 2;
  bad_knobs.detection_mode = txn::DetectionMode::kPeriodic;
  bad_knobs.detection_period = std::chrono::microseconds(1000);
  bad_knobs.scheduler.min_period = 0;
  auto service3 = txn::ConcurrentLockService::Create(bad_knobs);
  EXPECT_TRUE(service3.status().IsInvalidArgument());
}

}  // namespace
}  // namespace twbg
