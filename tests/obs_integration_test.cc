// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// End-to-end observability: every event kind in the taxonomy is actually
// produced by some scenario, the simulator surfaces trace drops, and the
// JSONL exporter writes one parseable object per event.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>

#include "baselines/factory.h"
#include "core/cost_table.h"
#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "core/script.h"
#include "obs/bus.h"
#include "obs/sinks.h"
#include "sim/simulator.h"
#include "txn/concurrent_service.h"
#include "txn/transaction_manager.h"

namespace twbg {
namespace {

void InsertKinds(const obs::CollectorSink& sink,
                 std::set<obs::EventKind>* kinds) {
  for (const obs::Event& event : sink.events()) kinds->insert(event.kind);
}

// The scenarios together must exercise the whole taxonomy:
//  (a) a TransactionManager lifecycle with a periodic TDR-1 resolution,
//  (b) Example 4.1 (conversions + a TDR-2 queue repositioning),
//  (c) a simulator run with a deliberately blind strategy (restarts,
//      wait-ends, detector misses) and a hair-trigger watchdog
//      (starvation and convoy alerts),
//  (d) a sharded ConcurrentLockService pass (shard-contention counters
//      and, pauselessly, snapshot publishes),
//  (e) the robustness layer (deadlines, admission, injected faults),
//  (f) graceful degradation (pause budget busted),
//  (g) a pauseless pass whose change-list goes stale in the
//      seal-to-apply window (resolution rejections),
//  (h) the closed-loop period controller retuning the simulator's
//      detection schedule (period retunes).
TEST(ObsIntegrationTest, EveryEventKindIsEmittedSomewhere) {
  std::set<obs::EventKind> kinds;

  {  // (a) lifecycle + TDR-1 victim through the transaction manager.
    obs::EventBus bus;
    obs::CollectorSink sink;
    bus.Subscribe(&sink);
    txn::TransactionManagerOptions options;
    options.event_bus = &bus;
    txn::TransactionManager tm(options);
    const lock::TransactionId t1 = *tm.Begin();
    const lock::TransactionId t2 = *tm.Begin();
    const lock::TransactionId t3 = *tm.Begin();
    ASSERT_TRUE(tm.Acquire(t1, 1, lock::LockMode::kX).ok());
    ASSERT_TRUE(tm.Acquire(t2, 2, lock::LockMode::kX).ok());
    ASSERT_TRUE(tm.Acquire(t1, 2, lock::LockMode::kX).IsWouldBlock());
    ASSERT_TRUE(
        tm.Acquire(t2, 1, lock::LockMode::kX).IsWouldBlock());  // deadlock
    core::ResolutionReport report = tm.RunDetection();
    EXPECT_GT(report.cycles_detected, 0u);
    EXPECT_FALSE(report.aborted.empty());
    ASSERT_TRUE(tm.Abort(t3).ok());  // voluntary abort
    // Whichever of t1/t2 survived can now run to commit.
    const lock::TransactionId survivor =
        tm.Find(t1)->state == txn::TxnState::kAborted ? t2 : t1;
    ASSERT_TRUE(tm.Commit(survivor).ok());
    InsertKinds(sink, &kinds);
  }

  {  // (b) conversions and TDR-2 repositioning (Example 4.1).
    obs::EventBus bus;
    obs::CollectorSink sink;
    bus.Subscribe(&sink);
    lock::LockManager manager;
    manager.set_event_bus(&bus);
    core::BuildExample41(manager);
    core::CostTable costs;
    core::DetectorOptions options;
    options.event_bus = &bus;
    core::PeriodicDetector detector(options);
    core::ResolutionReport report = detector.RunPass(manager, costs);
    EXPECT_FALSE(report.repositioned.empty());  // the TDR-2 happened
    EXPECT_GT(sink.Count(obs::EventKind::kLockConvert), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kUprReposition), 0u);
    InsertKinds(sink, &kinds);
  }

  {  // (c) a blind strategy: misses, restarts and completed waits.
    sim::SimConfig config;
    config.workload.seed = 3;
    config.workload.num_transactions = 60;
    config.workload.concurrency = 6;
    config.workload.num_resources = 4;
    config.workload.mode_weights = {0, 0, 0.3, 0, 0.7};
    config.detection_period = 5;
    config.enable_watchdog = true;
    // Hair-trigger thresholds so this tiny hot-spot workload reliably
    // produces both alert kinds.
    config.watchdog.starvation_age = 8;
    config.watchdog.starvation_restarts = 1;
    config.watchdog.convoy_depth = 2;
    config.watchdog.check_interval = 1;
    sim::Simulator sim(config, baselines::MakeStrategy("none"));
    obs::CollectorSink sink;
    sim.event_bus().Subscribe(&sink);
    sim::SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 60u);
    EXPECT_GT(metrics.missed_deadlocks, 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kDetectorMiss), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kTxnRestart), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kWaitEnd), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kStarvation), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kConvoy), 0u);
    EXPECT_EQ(metrics.starvation_alerts,
              sink.Count(obs::EventKind::kStarvation));
    EXPECT_EQ(metrics.convoy_alerts, sink.Count(obs::EventKind::kConvoy));
    InsertKinds(sink, &kinds);
  }

  {  // (d) the sharded service publishes per-shard contention counters
     //     on every detection pass.
    obs::EventBus bus;
    obs::CollectorSink sink;
    bus.Subscribe(&sink);
    txn::ConcurrentServiceOptions options;
    options.num_shards = 4;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.event_bus = &bus;
    auto service = txn::ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    const lock::TransactionId t = *(*service)->Begin();
    ASSERT_TRUE((*service)->AcquireBlocking(t, 1, lock::LockMode::kX).ok());
    (void)(*service)->RunDetectionPass();
    ASSERT_TRUE((*service)->Commit(t).ok());
    EXPECT_EQ(sink.Count(obs::EventKind::kShardContention),
              (*service)->num_shards());
    InsertKinds(sink, &kinds);
  }

  {  // (e) the robustness layer in the simulator: deadline expiries,
     //     admission rejections and injected faults.
    sim::SimConfig config;
    config.workload.seed = 11;
    config.workload.num_transactions = 40;
    config.workload.concurrency = 6;
    config.workload.num_resources = 3;
    config.workload.mode_weights = {0, 0, 0.2, 0, 0.8};
    config.detection_period = 0;  // the deadline layer is the resolver
    config.robustness.deadline.lock_wait = 3;
    config.robustness.deadline.abort_after = 2;
    config.robustness.deadline.txn_budget = 400;
    config.robustness.admission.max_inflight_txns = 4;
    robustness::Fault stall;
    stall.kind = robustness::FaultKind::kStallShard;
    stall.at = 2;
    stall.duration = 3;
    config.fault_plan.faults.push_back(stall);
    sim::Simulator sim(config, baselines::MakeStrategy("none"));
    obs::CollectorSink sink;
    sim.event_bus().Subscribe(&sink);
    sim::SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 40u);
    EXPECT_GT(sink.Count(obs::EventKind::kDeadlineExpired), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kAdmissionReject), 0u);
    EXPECT_GT(sink.Count(obs::EventKind::kFaultInjected), 0u);
    EXPECT_EQ(metrics.deadline_expired_waits,
              sink.Count(obs::EventKind::kDeadlineExpired));
    EXPECT_EQ(metrics.admission_rejects,
              sink.Count(obs::EventKind::kAdmissionReject));
    EXPECT_EQ(metrics.faults_injected,
              sink.Count(obs::EventKind::kFaultInjected));
    InsertKinds(sink, &kinds);
  }

  {  // (f) graceful degradation: a one-nanosecond pause budget degrades
     //     the sharded engine on its first full pass.
    obs::EventBus bus;
    obs::CollectorSink sink;
    bus.Subscribe(&sink);
    txn::ConcurrentServiceOptions options;
    options.num_shards = 2;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.event_bus = &bus;
    options.robustness.degradation.pause_budget_ns = 1;
    options.robustness.degradation.degraded_passes = 2;
    auto service = txn::ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    const lock::TransactionId t = *(*service)->Begin();
    ASSERT_TRUE((*service)->AcquireBlocking(t, 1, lock::LockMode::kX).ok());
    (void)(*service)->RunDetectionPass();  // full pass: busts the budget
    EXPECT_EQ(sink.Count(obs::EventKind::kDegraded), 1u);
    EXPECT_EQ((*service)->degraded_passes_remaining(), 2u);
    ASSERT_TRUE((*service)->Commit(t).ok());
    InsertKinds(sink, &kinds);
  }

  {  // (g) a pauseless (kEpochDelta) pass whose resolution command goes
     //     stale in the seal-to-apply window: a bystander queued on a
     //     cycle resource aborts between seal and apply, bumping the
     //     resource's version stamp, so validation drops the command
     //     (kResolutionRejected) and the next pass re-resolves it.
    obs::EventBus bus;
    obs::CollectorSink sink;
    bus.Subscribe(&sink);
    txn::ConcurrentServiceOptions options;
    options.num_shards = 2;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.event_bus = &bus;
    txn::ConcurrentLockService* raw = nullptr;
    lock::TransactionId bystander = 0;
    std::atomic<int> hook_fires{0};
    options.post_seal_hook = [&] {
      if (hook_fires.fetch_add(1) == 0) {
        EXPECT_TRUE(raw->Abort(bystander).ok());
      }
    };
    auto service = txn::ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    raw = service->get();

    const lock::TransactionId t1 = *raw->Begin();
    const lock::TransactionId t2 = *raw->Begin();
    bystander = *raw->Begin();
    ASSERT_TRUE(raw->AcquireBlocking(t1, 1, lock::LockMode::kX).ok());
    ASSERT_TRUE(raw->AcquireBlocking(t2, 2, lock::LockMode::kX).ok());

    std::atomic<int> aborted_waits{0};
    auto block = [&](lock::TransactionId t, lock::ResourceId rid) {
      Status status = raw->AcquireBlocking(t, rid, lock::LockMode::kX);
      if (status.IsAborted()) {
        ++aborted_waits;
        return;
      }
      ASSERT_TRUE(status.ok()) << status.ToString();
      ASSERT_TRUE(raw->Commit(t).ok());
    };
    auto wait_blocked = [&](lock::TransactionId t) {
      while (*raw->State(t) != txn::TxnState::kBlocked) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    std::thread a(block, t1, 2);
    wait_blocked(t1);
    std::thread b(block, t2, 1);
    wait_blocked(t2);
    std::thread c(block, bystander, 1);  // queued behind T1 on R1
    wait_blocked(bystander);

    core::ResolutionReport first = raw->RunDetectionPass();
    EXPECT_EQ(first.rejected, 1u);
    EXPECT_TRUE(first.aborted.empty());
    core::ResolutionReport second = raw->RunDetectionPass();
    EXPECT_EQ(second.rejected, 0u);
    EXPECT_EQ(second.aborted.size(), 1u);
    a.join();
    b.join();
    c.join();
    EXPECT_EQ(aborted_waits.load(), 2);  // the bystander + the victim
    EXPECT_EQ(raw->deadlock_victims(), 1u);
    EXPECT_EQ(raw->resolutions_rejected(), 1u);
    EXPECT_EQ(sink.Count(obs::EventKind::kSnapshotPublish),
              2 * options.num_shards);
    EXPECT_EQ(sink.Count(obs::EventKind::kResolutionRejected), 1u);
    InsertKinds(sink, &kinds);
  }

  {  // (h) the closed-loop scheduler: an EWMA policy over a
     //     deadlock-prone workload moves the period, and every retune is
     //     mirrored between the bus and the SimMetrics counters.
    sim::SimConfig config;
    config.workload.seed = 5;
    config.workload.num_transactions = 60;
    config.workload.concurrency = 6;
    config.workload.num_resources = 4;
    config.workload.mode_weights = {0, 0, 0.2, 0, 0.8};
    config.detection_period = 4;
    config.scheduler.policy = sched::SchedulerPolicy::kEwmaRate;
    config.scheduler.min_period = 2;
    config.scheduler.max_period = 64;
    sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
    obs::CollectorSink sink;
    sim.event_bus().Subscribe(&sink);
    sim::SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 60u);
    EXPECT_GT(metrics.period_retunes, 0u);
    EXPECT_EQ(metrics.period_retunes,
              sink.Count(obs::EventKind::kPeriodRetuned));
    InsertKinds(sink, &kinds);
  }

  for (size_t i = 0; i < obs::kNumEventKinds; ++i) {
    EXPECT_TRUE(kinds.count(static_cast<obs::EventKind>(i)))
        << "kind never emitted: "
        << obs::ToString(static_cast<obs::EventKind>(i));
  }
}

TEST(ObsIntegrationTest, SimulatorSurfacesTraceDrops) {
  sim::SimConfig config;
  config.workload.seed = 7;
  config.workload.num_transactions = 60;
  config.workload.concurrency = 6;
  config.workload.num_resources = 12;
  config.record_trace = true;
  config.trace_capacity = 4;  // far too small on purpose
  sim::Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  sim::SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.committed, 60u);
  EXPECT_GT(metrics.trace_dropped, 0u);
  EXPECT_EQ(metrics.trace_dropped, sim.trace().dropped());
  EXPECT_LE(sim.trace().events().size(), 4u);
  // The dropped count appears in the one-line report.
  EXPECT_NE(metrics.ToString().find("trace_dropped="), std::string::npos);
}

TEST(ObsIntegrationTest, ScriptRunnerStreamsParseableJsonl) {
  const std::string path = ::testing::TempDir() + "twbg_obs_events.jsonl";
  core::ScriptRunner runner;
  ASSERT_TRUE(runner.StreamEventsTo(path).ok());
  std::string out;
  ASSERT_TRUE(runner
                  .ExecuteScript("acquire 1 1 S\n"
                                 "acquire 2 1 X\n"
                                 "acquire 3 2 S\n"
                                 "acquire 1 2 X\n"
                                 "acquire 3 1 S\n"
                                 "detect\n"
                                 "obs\n",
                                 &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("jsonl:"), std::string::npos) << out;

  // Flush by streaming elsewhere is not needed: `obs` flushed the sink.
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  size_t lines = 0;
  bool saw_pass_end = false;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, file) != nullptr) {
    const std::string line(buffer);
    ++lines;
    EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
    EXPECT_EQ(line[line.size() - 2], '}') << line;  // "...}\n"
    if (line.find("\"kind\":\"pass_end\"") != std::string::npos) {
      saw_pass_end = true;
    }
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_GT(lines, 5u);
  EXPECT_TRUE(saw_pass_end);
}

}  // namespace
}  // namespace twbg
