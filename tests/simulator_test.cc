// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"

namespace twbg::sim {
namespace {

SimConfig SmallConfig(uint64_t seed) {
  SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 60;
  config.workload.concurrency = 6;
  config.workload.num_resources = 12;
  config.workload.zipf_theta = 0.9;
  config.workload.min_ops = 3;
  config.workload.max_ops = 8;
  config.detection_period = 5;
  config.max_ticks = 200000;
  return config;
}

TEST(SimulatorTest, CompletesWorkloadWithPeriodicHwTwbg) {
  SimConfig config = SmallConfig(7);
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  EXPECT_FALSE(metrics.timed_out);
  EXPECT_EQ(metrics.committed, 60u);
  EXPECT_EQ(metrics.missed_deadlocks, 0u);  // complete detector
  EXPECT_GT(metrics.detector_invocations, 0u);
}

TEST(SimulatorTest, CompletesWorkloadWithContinuousHwTwbg) {
  SimConfig config = SmallConfig(7);
  config.detection_period = 0;  // purely on-block
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-continuous"));
  SimMetrics metrics = sim.Run();
  EXPECT_FALSE(metrics.timed_out);
  EXPECT_EQ(metrics.committed, 60u);
  EXPECT_EQ(metrics.missed_deadlocks, 0u);
}

TEST(SimulatorTest, DeterministicGivenSeedAndStrategy) {
  SimConfig config = SmallConfig(21);
  SimMetrics a =
      Simulator(config, baselines::MakeStrategy("hwtwbg-periodic")).Run();
  SimMetrics b =
      Simulator(config, baselines::MakeStrategy("hwtwbg-periodic")).Run();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.deadlock_aborts, b.deadlock_aborts);
  EXPECT_EQ(a.cycles_found, b.cycles_found);
  EXPECT_EQ(a.no_abort_resolutions, b.no_abort_resolutions);
}

TEST(SimulatorTest, EveryStrategyCompletesTheWorkload) {
  for (std::string_view name : baselines::AllStrategyNames()) {
    SimConfig config = SmallConfig(13);
    Simulator sim(config, baselines::MakeStrategy(name));
    SimMetrics metrics = sim.Run();
    EXPECT_FALSE(metrics.timed_out) << name << ": " << metrics.ToString();
    EXPECT_EQ(metrics.committed, 60u) << name;
  }
}

TEST(SimulatorTest, NullStrategyLeansOnStallRecovery) {
  SimConfig config = SmallConfig(3);
  // Make conflicts certain so deadlocks occur.
  config.workload.num_resources = 4;
  config.workload.mode_weights = {0, 0, 0.3, 0, 0.7};
  Simulator sim(config, baselines::MakeStrategy("none"));
  SimMetrics metrics = sim.Run();
  EXPECT_FALSE(metrics.timed_out);
  EXPECT_EQ(metrics.committed, 60u);
  EXPECT_GT(metrics.missed_deadlocks, 0u);  // the driver had to step in
  EXPECT_EQ(metrics.deadlock_aborts, 0u);   // the strategy never acted
}

TEST(SimulatorTest, TimeoutStrategyProducesFalseAborts) {
  // Convoy workload: long scripts queue up behind hot resources, so waits
  // routinely exceed the timeout horizon without any deadlock.  We do not
  // require completion — blind timeouts notoriously livelock saturated
  // systems (each victim restarts into the same convoy); the point here
  // is that they abort transactions the oracle says were merely waiting.
  SimConfig config = SmallConfig(5);
  config.workload.num_resources = 20;
  config.workload.zipf_theta = 1.1;
  config.workload.min_ops = 10;
  config.workload.max_ops = 14;
  config.workload.mode_weights = {0.2, 0.1, 0.5, 0.0, 0.2};
  config.workload.conversion_prob = 0.05;
  config.detection_period = 2;  // timeout horizon = 2 * 10 = 20 ticks
  config.max_ticks = 60000;
  config.measure_false_aborts = true;
  Simulator sim(config, baselines::MakeStrategy("timeout"));
  SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.deadlock_aborts, 0u);
  EXPECT_GT(metrics.false_aborts, 0u);  // timeouts kill innocent waiters
}

TEST(SimulatorTest, HwTwbgUsesTdr2UnderContention) {
  SimConfig config = SmallConfig(11);
  config.workload.num_transactions = 150;
  config.workload.num_resources = 8;
  config.workload.conversion_prob = 0.35;
  config.workload.mode_weights = {0.3, 0.2, 0.25, 0.05, 0.2};
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  EXPECT_FALSE(metrics.timed_out);
  EXPECT_GT(metrics.cycles_found, 0u);
  // The headline claim: some deadlocks resolve with no abort at all.
  EXPECT_GT(metrics.no_abort_resolutions, 0u);
}

TEST(SimulatorTest, MetricsToStringMentionsKeyFields) {
  SimConfig config = SmallConfig(2);
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  std::string s = metrics.ToString();
  EXPECT_NE(s.find("committed=60"), std::string::npos);
  EXPECT_NE(s.find("thrpt="), std::string::npos);
}

TEST(SimulatorTest, StressThousandTransactions) {
  // A larger closed-system run: 1000 transactions, high contention, both
  // detector flavors.  Guards against slow leaks in restart bookkeeping
  // and detector state across thousands of passes.
  for (std::string_view name : {"hwtwbg-periodic", "hwtwbg-continuous"}) {
    SimConfig config;
    config.workload.seed = 99;
    config.workload.num_transactions = 1000;
    config.workload.concurrency = 12;
    config.workload.num_resources = 24;
    config.workload.zipf_theta = 0.9;
    config.workload.conversion_prob = 0.25;
    config.detection_period = 7;
    config.max_ticks = 2'000'000;
    Simulator sim(config, baselines::MakeStrategy(name));
    SimMetrics metrics = sim.Run();
    EXPECT_FALSE(metrics.timed_out) << name << ": " << metrics.ToString();
    EXPECT_EQ(metrics.committed, 1000u) << name;
    EXPECT_EQ(metrics.missed_deadlocks, 0u) << name;
    EXPECT_GT(metrics.cycles_found, 0u) << name;
  }
}

// Wait-end accounting: deadline-expired waiters and detector-resolved
// waits land in disjoint SimMetrics counters.
TEST(SimulatorTest, DeadlineAndDetectorAccountingIsDisjoint) {
  // Hot two-resource X workload: plenty of deadlocks.
  SimConfig hot;
  hot.workload.seed = 11;
  hot.workload.num_transactions = 40;
  hot.workload.concurrency = 6;
  hot.workload.num_resources = 3;
  hot.workload.mode_weights = {0.0, 0.0, 0.2, 0.0, 0.8};
  hot.workload.min_ops = 2;
  hot.workload.max_ops = 4;

  // Detector only: deadline counters must stay zero.
  {
    SimConfig config = hot;
    config.detection_period = 5;
    Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
    SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 40u);
    EXPECT_GT(metrics.deadlock_aborts + metrics.no_abort_resolutions, 0u);
    EXPECT_EQ(metrics.deadline_expired_waits, 0u);
    EXPECT_EQ(metrics.deadline_aborts, 0u);
  }

  // Deadline layer only (no detector): deadlock counters must stay zero
  // even though every deadlock is resolved — by expiry, not detection.
  {
    SimConfig config = hot;
    config.detection_period = 0;
    config.robustness.deadline.lock_wait = 3;
    config.robustness.deadline.abort_after = 2;
    Simulator sim(config, baselines::MakeStrategy("none"));
    SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 40u);
    EXPECT_GT(metrics.deadline_expired_waits, 0u);
    EXPECT_GT(metrics.deadline_aborts, 0u);
    EXPECT_EQ(metrics.deadlock_aborts, 0u);
    EXPECT_EQ(metrics.cycles_found, 0u);
  }

  // Both mechanisms active: each keeps its own ledger.  Every deadline
  // abort here stems from expiry escalation, so it cannot exceed the
  // expired-wait count; detector resolutions are counted separately.
  {
    SimConfig config = hot;
    config.detection_period = 5;
    config.robustness.deadline.lock_wait = 8;
    config.robustness.deadline.abort_after = 3;
    Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
    SimMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.committed, 40u);
    EXPECT_LE(metrics.deadline_aborts, metrics.deadline_expired_waits);
    // Restarts account for every kill exactly once, whichever mechanism
    // performed it (committed runs end without a pending restart).
    EXPECT_GE(metrics.restarts,
              metrics.deadlock_aborts + metrics.deadline_aborts);
  }
}

TEST(SimulatorTest, LowContentionRunsAreCheap) {
  SimConfig config = SmallConfig(9);
  config.workload.num_resources = 4000;  // almost no conflicts
  config.workload.zipf_theta = 0.0;
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.committed, 60u);
  EXPECT_EQ(metrics.deadlock_aborts, 0u);
  EXPECT_EQ(metrics.cycles_found, 0u);
  EXPECT_EQ(metrics.wasted_ops, 0u);
}

}  // namespace
}  // namespace twbg::sim
