// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Allocation accounting for the lock-table substrate: a binary-local
// counting operator new asserts the contracts the flat-hash layout was
// built for —
//
//   * ResourceState copy-assignment reuses destination holder/queue
//     capacity (the PR-6 snapshot-staging contract),
//   * a steady-state ShardSnapshot Capture+Fold round allocates nothing,
//   * steady-state create/erase churn on a LockTable recycles pooled
//     states instead of allocating,
//   * the fast-path Acquire of an uncontended lock allocates nothing
//     once the transaction and resource footprints exist.
//
// The counter hooks this test binary's global operator new, so every
// EXPECT below measures the whole process — run serially (gtest default)
// these windows are deterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "lock/lock_manager.h"
#include "lock/lock_table.h"
#include "lock/resource_state.h"
#include "txn/epoch_snapshot.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace twbg {
namespace {

using lock::LockManager;
using lock::LockMode;

uint64_t AllocCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

// Fills `state` with holders and a queue long enough to spill the inline
// capacity of both small vectors.
void FillBeyondInline(lock::ResourceState& state) {
  for (lock::TransactionId tid = 1; tid <= 6; ++tid) {
    ASSERT_TRUE(state.Request(tid, LockMode::kIS).ok());
  }
  for (lock::TransactionId tid = 7; tid <= 13; ++tid) {
    ASSERT_TRUE(state.Request(tid, LockMode::kX).ok());  // queues up
  }
  ASSERT_GT(state.holders().size(), 4u);
  ASSERT_GT(state.queue().size(), 4u);
}

TEST(CaptureAllocTest, ResourceStateCopyAssignReusesCapacity) {
  lock::ResourceState source(1);
  FillBeyondInline(source);
  lock::ResourceState dest(1);
  dest = source;  // first assignment may grow the destination
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100; ++i) dest = source;
  EXPECT_EQ(AllocCount(), before)
      << "copy-assign into a warmed destination must reuse capacity";
}

TEST(CaptureAllocTest, SteadyStateCaptureAndFoldAreAllocFree) {
  LockManager lm;
  txn::ShardSnapshot snapshot;
  // A fixed footprint: T1/T2 hold shared locks, T3 waits, plus one
  // resource that churns through create/erase each round.
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 10, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 10, LockMode::kX).ok());  // blocks
  auto one_round = [&](lock::TransactionId churn_tid) {
    ASSERT_TRUE(lm.Acquire(churn_tid, 20, LockMode::kX).ok());
    lm.ReleaseAll(churn_tid);  // R20 goes free and is reclaimed
    (void)snapshot.Capture(lm);
    snapshot.Fold();
  };
  // Warm every buffer: snapshot staging, mirror table, journals, pools.
  for (int i = 0; i < 200; ++i) one_round(4);
  const uint64_t before = AllocCount();
  for (int i = 0; i < 50; ++i) one_round(4);
  EXPECT_EQ(AllocCount(), before)
      << "steady-state capture+fold rounds must not allocate";
}

TEST(CaptureAllocTest, LockTableChurnRecyclesPooledStates) {
  lock::LockTable table;
  // Warm the pool and the hash table across the rid range.  The round
  // count is what it takes the mutation journal to fill its retention
  // ring and enter its compaction steady state — only then do appends
  // stop growing the backing vector.
  for (int round = 0; round < 2200; ++round) {
    for (lock::ResourceId rid = 1; rid <= 32; ++rid) {
      lock::ResourceState& state = table.GetOrCreate(rid);
      ASSERT_TRUE(state.TryFastGrant(1, LockMode::kX));
    }
    for (lock::ResourceId rid = 1; rid <= 32; ++rid) {
      table.FindMutable(rid)->Remove(1);
      table.EraseIfFree(rid);
    }
  }
  const uint64_t before = AllocCount();
  for (int round = 0; round < 20; ++round) {
    for (lock::ResourceId rid = 1; rid <= 32; ++rid) {
      lock::ResourceState& state = table.GetOrCreate(rid);
      ASSERT_TRUE(state.TryFastGrant(1, LockMode::kX));
    }
    for (lock::ResourceId rid = 1; rid <= 32; ++rid) {
      table.FindMutable(rid)->Remove(1);
      table.EraseIfFree(rid);
    }
  }
  EXPECT_EQ(AllocCount(), before)
      << "steady-state create/erase churn must recycle pooled states";
}

TEST(CaptureAllocTest, UncontendedAcquireReleaseIsAllocFree) {
  LockManager lm;
  // Warm: the txn bookkeeping entry, its touched set, the resource pool.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kX).ok());
    lm.ReleaseAll(1);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kX).ok());
    lm.ReleaseAll(1);
  }
  EXPECT_EQ(AllocCount(), before)
      << "uncontended acquire/release must ride the fast path alloc-free";
}

}  // namespace
}  // namespace twbg
