// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// InProcessClient: the LockClient contract against a periodic-engine
// service in the same address space — Begin/Acquire/Await/Commit
// round-trips, victim-abort surfacing through Await, view rendering and
// the ProjectReport projection the daemon shares.

#include "txn/lock_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

namespace twbg::txn {
namespace {

ConcurrentServiceOptions PeriodicOptions() {
  ConcurrentServiceOptions options;
  options.detection_mode = DetectionMode::kPeriodic;
  options.num_shards = 1;
  return options;
}

std::unique_ptr<ConcurrentLockService> MakeService() {
  auto service = ConcurrentLockService::Create(PeriodicOptions());
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

TEST(InProcessClientTest, CreateRejectsNullAndContinuous) {
  EXPECT_TRUE(InProcessClient::Create(nullptr).status().IsInvalidArgument());

  auto continuous = ConcurrentLockService::Create({});
  ASSERT_TRUE(continuous.ok());
  EXPECT_TRUE(InProcessClient::Create(continuous->get())
                  .status()
                  .IsInvalidArgument());
}

TEST(InProcessClientTest, GrantCommitLifecycle) {
  auto service = MakeService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());

  auto tid = (*client)->Begin();
  ASSERT_TRUE(tid.ok());
  auto outcome = (*client)->Acquire(*tid, 1, lock::LockMode::kX);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, lock::RequestOutcome::kGranted);
  // Re-request of a held lock.
  outcome = (*client)->Acquire(*tid, 1, lock::LockMode::kX);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, lock::RequestOutcome::kAlreadyHeld);
  // Await on an active transaction returns immediately.
  EXPECT_TRUE((*client)->Await(*tid).ok());
  EXPECT_TRUE((*client)->Commit(*tid).ok());
  auto state = (*client)->State(*tid);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, TxnState::kCommitted);
  // Double commit is a clean precondition failure.
  EXPECT_TRUE((*client)->Commit(*tid).IsFailedPrecondition());
}

TEST(InProcessClientTest, BlockedAcquireGrantedAfterRelease) {
  auto service = MakeService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());

  auto holder = (*client)->Begin();
  auto waiter = (*client)->Begin();
  ASSERT_TRUE(holder.ok() && waiter.ok());
  ASSERT_TRUE((*client)->Acquire(*holder, 1, lock::LockMode::kX).ok());
  auto outcome = (*client)->Acquire(*waiter, 1, lock::LockMode::kS);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, lock::RequestOutcome::kBlocked);

  // Release from another thread while this one awaits the grant.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(service->Commit(*holder).ok());
  });
  EXPECT_TRUE((*client)->Await(*waiter).ok());
  releaser.join();
  auto state = (*client)->State(*waiter);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, TxnState::kActive);
  EXPECT_TRUE((*client)->Commit(*waiter).ok());
}

TEST(InProcessClientTest, VictimSurfacesThroughAwait) {
  auto service = MakeService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());

  auto t1 = (*client)->Begin();
  auto t2 = (*client)->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*client)->Acquire(*t1, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE((*client)->Acquire(*t2, 2, lock::LockMode::kX).ok());
  EXPECT_EQ(*(*client)->Acquire(*t1, 2, lock::LockMode::kX),
            lock::RequestOutcome::kBlocked);
  EXPECT_EQ(*(*client)->Acquire(*t2, 1, lock::LockMode::kX),
            lock::RequestOutcome::kBlocked);

  auto deadlocked = (*client)->HasDeadlock();
  ASSERT_TRUE(deadlocked.ok());
  EXPECT_TRUE(*deadlocked);

  // Make T1 the cheaper victim, then resolve.
  ASSERT_TRUE((*client)->SetCost(*t1, 1.0).ok());
  ASSERT_TRUE((*client)->SetCost(*t2, 10.0).ok());
  auto detect = (*client)->Detect();
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->cycles_detected, 1u);
  ASSERT_EQ(detect->aborted.size(), 1u);
  EXPECT_EQ(detect->aborted[0], *t1);
  EXPECT_FALSE(detect->report.empty());

  // The victim's Await reports the abort; the survivor's reports the
  // grant it inherited.
  EXPECT_TRUE((*client)->Await(*t1).IsDeadlockVictim());
  EXPECT_TRUE((*client)->Await(*t2).ok());
  EXPECT_TRUE((*client)->Commit(*t2).ok());
}

TEST(InProcessClientTest, ViewsRender) {
  auto service = MakeService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());

  auto tid = (*client)->Begin();
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE((*client)->Acquire(*tid, 1, lock::LockMode::kS).ok());

  auto table = (*client)->View(ServiceView::kTable);
  ASSERT_TRUE(table.ok());
  EXPECT_NE(table->find("R1"), std::string::npos);
  auto oracle = (*client)->View(ServiceView::kOracle);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NE(oracle->find("deadlocked=no"), std::string::npos);
  auto costs = (*client)->View(ServiceView::kCosts);
  ASSERT_TRUE(costs.ok());
  EXPECT_NE(costs->find("T1:"), std::string::npos);
}

TEST(InProcessClientTest, StatsReportServiceCountersZeroSessions) {
  auto service = MakeService();
  auto client = InProcessClient::Create(service.get());
  ASSERT_TRUE(client.ok());

  auto tid = (*client)->Begin();
  ASSERT_TRUE(tid.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->live_txns, 1u);
  EXPECT_EQ(stats->num_shards, 1u);
  EXPECT_EQ(stats->sessions_active, 0u);
  EXPECT_EQ(stats->sessions_total, 0u);
  EXPECT_EQ(stats->orphan_aborts, 0u);
}

TEST(ProjectReportTest, ProjectsAbortsAndCycleCount) {
  auto service = MakeService();
  ASSERT_TRUE(service->Begin().ok());
  ASSERT_TRUE(service->Begin().ok());
  ASSERT_TRUE(service->AcquireBlocking(1, 1, lock::LockMode::kX).ok());
  ASSERT_TRUE(service->AcquireBlocking(2, 2, lock::LockMode::kX).ok());
  ASSERT_TRUE(service->AcquireAsync(1, 2, lock::LockMode::kX).ok());
  ASSERT_TRUE(service->AcquireAsync(2, 1, lock::LockMode::kX).ok());

  const core::ResolutionReport report = service->RunDetectionPass();
  const DetectResult projected = ProjectReport(report);
  EXPECT_EQ(projected.report, report.ToString());
  EXPECT_EQ(projected.aborted, report.aborted);
  EXPECT_GE(projected.cycles_detected, 1u);
}

}  // namespace
}  // namespace twbg::txn
