// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace twbg::lock {
namespace {

using enum LockMode;

RequestOutcome MustAcquire(LockManager& lm, TransactionId tid, ResourceId rid,
                           LockMode mode) {
  Result<RequestOutcome> outcome = lm.Acquire(tid, rid, mode);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return *outcome;
}

TEST(LockManagerTest, GrantAndBlockBookkeeping) {
  LockManager lm;
  EXPECT_EQ(MustAcquire(lm, 1, 10, kX), RequestOutcome::kGranted);
  EXPECT_FALSE(lm.IsBlocked(1));
  EXPECT_EQ(MustAcquire(lm, 2, 10, kS), RequestOutcome::kBlocked);
  EXPECT_TRUE(lm.IsBlocked(2));
  EXPECT_EQ(lm.BlockedOn(2), std::optional<ResourceId>(10));
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(LockManagerTest, BlockedTransactionCannotRequest) {
  LockManager lm;
  MustAcquire(lm, 1, 10, kX);
  MustAcquire(lm, 2, 10, kS);  // blocks
  // Axiom 1: a blocked transaction waits on at most one resource.
  EXPECT_TRUE(lm.Acquire(2, 11, kS).status().IsFailedPrecondition());
  EXPECT_TRUE(lm.Acquire(2, 10, kS).status().IsFailedPrecondition());
}

TEST(LockManagerTest, ReleaseAllGrantsWaiters) {
  LockManager lm;
  MustAcquire(lm, 1, 10, kX);
  MustAcquire(lm, 2, 10, kS);
  MustAcquire(lm, 3, 10, kS);
  std::vector<TransactionId> granted = lm.ReleaseAll(1);
  EXPECT_EQ(granted, (std::vector<TransactionId>{2, 3}));
  EXPECT_FALSE(lm.IsBlocked(2));
  EXPECT_FALSE(lm.IsBlocked(3));
  EXPECT_EQ(lm.Info(1), nullptr);  // forgotten
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(LockManagerTest, ReleaseAllCoversMultipleResources) {
  LockManager lm;
  MustAcquire(lm, 1, 10, kX);
  MustAcquire(lm, 1, 11, kX);
  MustAcquire(lm, 2, 10, kS);
  MustAcquire(lm, 3, 11, kS);
  std::vector<TransactionId> granted = lm.ReleaseAll(1);
  EXPECT_EQ(granted.size(), 2u);
  EXPECT_EQ(lm.BlockedTransactions().size(), 0u);
  // Freed resources are reclaimed once nobody uses them.
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.table().empty());
}

TEST(LockManagerTest, ReleaseBlockedTransactionRemovesQueueEntry) {
  LockManager lm;
  MustAcquire(lm, 1, 10, kX);
  MustAcquire(lm, 2, 10, kX);  // queued
  MustAcquire(lm, 3, 10, kS);  // queued
  EXPECT_TRUE(lm.ReleaseAll(2).empty());  // aborting a mid-queue waiter
  EXPECT_EQ(lm.table().Find(10)->queue().size(), 1u);
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(LockManagerTest, ReleaseUnknownTransactionIsNoop) {
  LockManager lm;
  EXPECT_TRUE(lm.ReleaseAll(99).empty());
}

TEST(LockManagerTest, ConversionTracksBlockedMode) {
  LockManager lm;
  MustAcquire(lm, 1, 10, kIS);
  MustAcquire(lm, 2, 10, kIX);
  EXPECT_EQ(MustAcquire(lm, 1, 10, kS), RequestOutcome::kBlocked);
  const TxnLockInfo* info = lm.Info(1);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->blocked_mode, kS);  // Conv(IS, S)
  EXPECT_EQ(info->blocked_on, std::optional<ResourceId>(10));
}

TEST(LockManagerTest, RescheduleAfterTdr2GrantsAndUnblocks) {
  LockManager lm;
  MustAcquire(lm, 7, 2, kIS);
  MustAcquire(lm, 8, 2, kX);
  MustAcquire(lm, 9, 2, kIX);
  MustAcquire(lm, 3, 2, kS);
  ASSERT_TRUE(lm.ApplyTdr2(2, 3).ok());
  std::vector<TransactionId> granted = lm.Reschedule(2);
  EXPECT_EQ(granted, (std::vector<TransactionId>{9}));
  EXPECT_FALSE(lm.IsBlocked(9));
  EXPECT_TRUE(lm.IsBlocked(3));
  EXPECT_TRUE(lm.CheckInvariants().ok());
}

TEST(LockManagerTest, ApplyTdr2OnUnknownResourceFails) {
  LockManager lm;
  EXPECT_TRUE(lm.ApplyTdr2(5, 1).IsNotFound());
}

TEST(LockManagerTest, KnownAndBlockedTransactionLists) {
  LockManager lm;
  MustAcquire(lm, 2, 10, kX);
  MustAcquire(lm, 1, 10, kS);
  MustAcquire(lm, 3, 11, kS);
  EXPECT_EQ(lm.KnownTransactions(), (std::vector<TransactionId>{1, 2, 3}));
  EXPECT_EQ(lm.BlockedTransactions(), (std::vector<TransactionId>{1}));
}

TEST(LockManagerTest, InvalidTransactionIdRejected) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(0, 1, kS).status().IsInvalidArgument());
}

TEST(LockManagerTest, RandomizedBookkeepingConsistency) {
  common::Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    LockManager lm;
    for (int op = 0; op < 120; ++op) {
      TransactionId tid = static_cast<TransactionId>(rng.NextInRange(1, 10));
      if (rng.NextBernoulli(0.2)) {
        lm.ReleaseAll(tid);
      } else {
        ResourceId rid = static_cast<ResourceId>(rng.NextInRange(1, 5));
        LockMode mode = kRealModes[rng.NextBelow(5)];
        (void)lm.Acquire(tid, rid, mode);  // may fail if blocked: fine
      }
      Status invariants = lm.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    }
  }
}

}  // namespace
}  // namespace twbg::lock
