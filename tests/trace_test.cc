// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/trace.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "sim/simulator.h"

namespace twbg::sim {
namespace {

TraceEvent Make(size_t tick, TraceEventKind kind,
                lock::TransactionId tid = 1) {
  TraceEvent event;
  event.tick = tick;
  event.kind = kind;
  event.tid = tid;
  return event;
}

TEST(SimTraceTest, RecordsInOrder) {
  SimTrace trace(10);
  trace.Record(Make(1, TraceEventKind::kSpawn));
  trace.Record(Make(2, TraceEventKind::kGrant));
  trace.Record(Make(3, TraceEventKind::kCommit));
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, TraceEventKind::kSpawn);
  EXPECT_EQ(trace.events()[2].tick, 3u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(SimTraceTest, RingDropsOldest) {
  SimTrace trace(3);
  for (size_t i = 1; i <= 5; ++i) {
    trace.Record(Make(i, TraceEventKind::kGrant));
  }
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.events().front().tick, 3u);
  EXPECT_NE(trace.ToString().find("2 earlier events dropped"),
            std::string::npos);
}

TEST(SimTraceTest, FilterByKind) {
  SimTrace trace(10);
  trace.Record(Make(1, TraceEventKind::kBlock));
  trace.Record(Make(2, TraceEventKind::kGrant));
  trace.Record(Make(3, TraceEventKind::kBlock));
  EXPECT_EQ(trace.Filter(TraceEventKind::kBlock).size(), 2u);
  EXPECT_EQ(trace.Filter(TraceEventKind::kAbort).size(), 0u);
}

TEST(SimTraceTest, EventToString) {
  TraceEvent event;
  event.tick = 42;
  event.kind = TraceEventKind::kBlock;
  event.tid = 3;
  event.rid = 7;
  event.mode = lock::LockMode::kSIX;
  EXPECT_EQ(event.ToString(), "[    42] block  T3 R7 SIX");
}

TEST(SimTraceTest, KindNames) {
  EXPECT_EQ(ToString(TraceEventKind::kWakeup), "wakeup");
  EXPECT_EQ(ToString(TraceEventKind::kMiss), "miss");
  EXPECT_EQ(ToString(TraceEventKind::kDetect), "detect");
}

TEST(SimulatorTraceTest, RunProducesConsistentTrace) {
  SimConfig config;
  config.workload.seed = 6;
  config.workload.num_transactions = 40;
  config.workload.concurrency = 5;
  config.workload.num_resources = 8;
  config.workload.zipf_theta = 0.9;
  config.detection_period = 5;
  config.record_trace = true;
  config.trace_capacity = 1u << 20;  // keep everything
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  SimMetrics metrics = sim.Run();
  const SimTrace& trace = sim.trace();
  EXPECT_EQ(trace.dropped(), 0u);
  // Event counts tie out with the metrics.
  EXPECT_EQ(trace.Filter(TraceEventKind::kCommit).size(), metrics.committed);
  EXPECT_EQ(trace.Filter(TraceEventKind::kAbort).size(),
            metrics.deadlock_aborts + metrics.missed_deadlocks);
  EXPECT_EQ(trace.Filter(TraceEventKind::kDetect).size(),
            metrics.detector_invocations);
  EXPECT_EQ(trace.Filter(TraceEventKind::kWakeup).size(),
            metrics.wait_ticks.count());
  // Every commit was preceded by a spawn of the same transaction.
  EXPECT_GE(trace.Filter(TraceEventKind::kSpawn).size(), metrics.committed);
  // Ticks are monotone.
  size_t last = 0;
  for (const TraceEvent& event : trace.events()) {
    EXPECT_GE(event.tick, last);
    last = event.tick;
  }
}

TEST(SimulatorTraceTest, DisabledByDefault) {
  SimConfig config;
  config.workload.num_transactions = 5;
  config.workload.concurrency = 2;
  Simulator sim(config, baselines::MakeStrategy("hwtwbg-periodic"));
  sim.Run();
  EXPECT_TRUE(sim.trace().events().empty());
}

}  // namespace
}  // namespace twbg::sim
