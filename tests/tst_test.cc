// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the TST internal structure of §5 (Figure 5.1): entry set,
// W-edge-first ordering, pr bookkeeping and sentinels.

#include "core/tst.h"

#include <gtest/gtest.h>

#include "core/examples_catalog.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

TEST(TstTest, Example41MatchesFigure51) {
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());

  EXPECT_EQ(tst.size(), 9u);
  EXPECT_EQ(tst.Transactions(),
            (std::vector<lock::TransactionId>{1, 2, 3, 4, 5, 6, 7, 8, 9}));

  // T1: blocked converter (no pr), H edges to T2 and T5.
  const TstEntry& t1 = tst.At(1);
  EXPECT_FALSE(t1.pr.has_value());
  ASSERT_EQ(t1.waited.size(), 2u);
  EXPECT_EQ(t1.waited[0].to, 2u);
  EXPECT_EQ(t1.waited[1].to, 5u);
  EXPECT_TRUE(t1.waited[0].IsH());

  // T3: waits in R2's queue; W edge to T4 first, then H edges T1, T2, T6.
  const TstEntry& t3 = tst.At(3);
  EXPECT_EQ(t3.pr, std::optional<lock::ResourceId>(kR2));
  ASSERT_EQ(t3.waited.size(), 4u);
  EXPECT_TRUE(t3.waited[0].IsW());
  EXPECT_EQ(t3.waited[0].to, 4u);
  EXPECT_EQ(t3.waited[0].lock, kS);
  EXPECT_EQ(t3.waited[1].to, 1u);
  EXPECT_EQ(t3.waited[2].to, 2u);
  EXPECT_EQ(t3.waited[3].to, 6u);

  // T4: last in R2's queue — sentinel W edge only.
  const TstEntry& t4 = tst.At(4);
  EXPECT_EQ(t4.pr, std::optional<lock::ResourceId>(kR2));
  ASSERT_EQ(t4.waited.size(), 1u);
  EXPECT_TRUE(t4.waited[0].IsSentinel());
  EXPECT_EQ(t4.waited[0].lock, kX);

  // T7: last in R1's queue (sentinel) plus H edge to T8.
  const TstEntry& t7 = tst.At(7);
  EXPECT_EQ(t7.pr, std::optional<lock::ResourceId>(kR1));
  ASSERT_EQ(t7.waited.size(), 2u);
  EXPECT_TRUE(t7.waited[0].IsSentinel());
  EXPECT_EQ(t7.waited[0].lock, kIX);
  EXPECT_EQ(t7.waited[1].to, 8u);
  EXPECT_TRUE(t7.waited[1].IsH());

  // Unblocked holder with no waiters has an empty list.
  // (T4 is queued; T9 waits; check a mid-queue entry instead.)
  const TstEntry& t5 = tst.At(5);
  ASSERT_EQ(t5.waited.size(), 1u);
  EXPECT_EQ(t5.waited[0].to, 6u);
  EXPECT_EQ(t5.waited[0].lock, kIX);  // W edge carries the source's bm
}

TEST(TstTest, Example51WEdgePrecedesHEdges) {
  lock::LockManager lm;
  BuildExample51(lm);
  Tst tst = Tst::Build(lm.table());
  // T2 waits in R1's queue and holds R2: W edge (X, T3) must precede the
  // H edge to T1 — this ordering makes the walk find {T1,T2,T3} before
  // {T1,T2} (paper's Example 5.1).
  const TstEntry& t2 = tst.At(2);
  ASSERT_EQ(t2.waited.size(), 2u);
  EXPECT_TRUE(t2.waited[0].IsW());
  EXPECT_EQ(t2.waited[0].to, 3u);
  EXPECT_TRUE(t2.waited[1].IsH());
  EXPECT_EQ(t2.waited[1].to, 1u);
}

TEST(TstTest, WalkBookkeepingStartsClean) {
  lock::LockManager lm;
  BuildExample51(lm);
  Tst tst = Tst::Build(lm.table());
  for (lock::TransactionId tid : tst.Transactions()) {
    const TstEntry& entry = tst.At(tid);
    EXPECT_EQ(entry.ancestor, 0);
    EXPECT_EQ(entry.current, 0u);
  }
}

TEST(TstTest, CurrentNilSemantics) {
  TstEntry entry;
  EXPECT_TRUE(entry.CurrentIsNil());  // no edges at all
  const TwbgEdge edges[] = {TwbgEdge{1, 2, kNL, 1}};
  entry.waited = std::span<const TwbgEdge>(edges);
  entry.current = 0;
  EXPECT_FALSE(entry.CurrentIsNil());
  entry.SetCurrentNil();
  EXPECT_TRUE(entry.CurrentIsNil());
}

TEST(TstTest, NumEdgesCountsSentinels) {
  lock::LockManager lm;
  BuildExample41(lm);
  Tst tst = Tst::Build(lm.table());
  EXPECT_EQ(tst.NumEdges(), 14u);  // 12 real + 2 sentinels
}

TEST(TstTest, EmptyTableYieldsEmptyTst) {
  lock::LockTable table;
  Tst tst = Tst::Build(table);
  EXPECT_EQ(tst.size(), 0u);
  EXPECT_EQ(tst.NumEdges(), 0u);
}

TEST(TstTest, ToStringShowsStructure) {
  lock::LockManager lm;
  BuildExample51(lm);
  Tst tst = Tst::Build(lm.table());
  std::string s = tst.ToString();
  EXPECT_NE(s.find("T2: pr=R1"), std::string::npos);
  EXPECT_NE(s.find("(X, T3)"), std::string::npos);
  EXPECT_NE(s.find("(NL, T1)"), std::string::npos);
}

}  // namespace
}  // namespace twbg::core
