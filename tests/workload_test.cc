// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sim/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace twbg::sim {
namespace {

TEST(WorkloadTest, DeterministicFromSeed) {
  WorkloadConfig config;
  config.seed = 42;
  WorkloadGenerator a(config);
  WorkloadGenerator b(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextScript().ops, b.NextScript().ops);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig config;
  config.seed = 1;
  WorkloadGenerator a(config);
  config.seed = 2;
  WorkloadGenerator b(config);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextScript().ops == b.NextScript().ops) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(WorkloadTest, OpsCountWithinBounds) {
  WorkloadConfig config;
  config.min_ops = 2;
  config.max_ops = 5;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 200; ++i) {
    size_t n = gen.NextScript().ops.size();
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 5u);
  }
}

TEST(WorkloadTest, ResourceIdsWithinRange) {
  WorkloadConfig config;
  config.num_resources = 10;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 100; ++i) {
    for (const auto& [rid, mode] : gen.NextScript().ops) {
      EXPECT_GE(rid, 1u);
      EXPECT_LE(rid, 10u);
      EXPECT_NE(mode, lock::LockMode::kNL);
    }
  }
}

TEST(WorkloadTest, ZipfSkewConcentratesAccess) {
  WorkloadConfig config;
  config.num_resources = 100;
  config.zipf_theta = 1.2;
  config.conversion_prob = 0.0;
  WorkloadGenerator gen(config);
  std::map<lock::ResourceId, int> hits;
  int total = 0;
  for (int i = 0; i < 500; ++i) {
    for (const auto& [rid, mode] : gen.NextScript().ops) {
      ++hits[rid];
      ++total;
    }
  }
  int hot = 0;
  for (lock::ResourceId rid = 1; rid <= 10; ++rid) hot += hits[rid];
  EXPECT_GT(hot, total / 2);
}

TEST(WorkloadTest, ConversionsRevisitPlannedResources) {
  WorkloadConfig config;
  config.conversion_prob = 1.0;  // every op after the first revisits
  config.min_ops = 5;
  config.max_ops = 5;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 50; ++i) {
    TxnScript script = gen.NextScript();
    std::set<lock::ResourceId> distinct;
    for (const auto& [rid, mode] : script.ops) distinct.insert(rid);
    EXPECT_EQ(distinct.size(), 1u);  // first op plans, the rest revisit
  }
}

TEST(WorkloadTest, ZeroConversionsNeverRepeatByChanceCheck) {
  WorkloadConfig config;
  config.conversion_prob = 0.0;
  config.num_resources = 100000;  // collisions astronomically unlikely
  config.min_ops = 8;
  config.max_ops = 8;
  WorkloadGenerator gen(config);
  TxnScript script = gen.NextScript();
  std::set<lock::ResourceId> distinct;
  for (const auto& [rid, mode] : script.ops) distinct.insert(rid);
  EXPECT_EQ(distinct.size(), script.ops.size());
}

TEST(WorkloadTest, ModeWeightsRespected) {
  WorkloadConfig config;
  config.mode_weights = {0, 0, 0, 0, 1.0};  // X only
  config.conversion_prob = 0.0;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 50; ++i) {
    for (const auto& [rid, mode] : gen.NextScript().ops) {
      EXPECT_EQ(mode, lock::LockMode::kX);
    }
  }
}

}  // namespace
}  // namespace twbg::sim
