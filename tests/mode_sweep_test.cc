// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Exhaustive parameterized sweeps over lock-mode pairs: the §3 scheduling
// decisions (grant vs queue, conversion grant vs block) must agree with
// the Table 1 / Table 2 algebra for every combination.

#include <gtest/gtest.h>

#include <tuple>

#include "lock/resource_state.h"

namespace twbg::lock {
namespace {

using ModePair = std::tuple<LockMode, LockMode>;

class NewRequestSweep : public ::testing::TestWithParam<ModePair> {};

// A new request against a single granted holder is granted iff the modes
// are compatible (queue empty, tm == holder's granted mode).
TEST_P(NewRequestSweep, GrantIffCompatible) {
  auto [held, requested] = GetParam();
  ResourceState r(1);
  ASSERT_TRUE(r.Request(1, held).ok());
  Result<RequestOutcome> outcome = r.Request(2, requested);
  ASSERT_TRUE(outcome.ok());
  if (Compatible(requested, held)) {
    EXPECT_EQ(*outcome, RequestOutcome::kGranted);
    EXPECT_EQ(r.total_mode(), Convert(held, requested));
  } else {
    EXPECT_EQ(*outcome, RequestOutcome::kBlocked);
    EXPECT_TRUE(r.InQueue(2));
    EXPECT_EQ(r.total_mode(), held);  // queue members don't contribute
  }
  EXPECT_TRUE(r.CheckInvariants().ok());
}

// Releasing the holder always grants the queued request afterwards.
TEST_P(NewRequestSweep, ReleaseGrantsTheWaiter) {
  auto [held, requested] = GetParam();
  if (Compatible(requested, held)) GTEST_SKIP() << "not queued";
  ResourceState r(1);
  ASSERT_TRUE(r.Request(1, held).ok());
  ASSERT_TRUE(r.Request(2, requested).ok());
  EXPECT_EQ(r.Remove(1), (std::vector<TransactionId>{2}));
  EXPECT_EQ(r.FindHolder(2)->granted, requested);
}

class ConversionSweep : public ::testing::TestWithParam<ModePair> {};

// A conversion against one other holder: computed via Conv, granted iff
// the converted mode is compatible with the other granted mode.
TEST_P(ConversionSweep, ConversionSemantics) {
  auto [own, other] = GetParam();
  if (!Compatible(own, other)) GTEST_SKIP() << "cannot coexist";
  for (LockMode requested : kRealModes) {
    ResourceState r(1);
    ASSERT_TRUE(r.Request(1, own).ok());
    ASSERT_TRUE(r.Request(2, other).ok());
    const LockMode converted = Convert(own, requested);
    Result<RequestOutcome> outcome = r.Request(1, requested);
    ASSERT_TRUE(outcome.ok());
    if (converted == own) {
      EXPECT_EQ(*outcome, RequestOutcome::kAlreadyHeld)
          << ToString(own) << "+" << ToString(requested);
      continue;
    }
    if (Compatible(converted, other)) {
      EXPECT_EQ(*outcome, RequestOutcome::kGranted);
      EXPECT_EQ(r.FindHolder(1)->granted, converted);
    } else {
      EXPECT_EQ(*outcome, RequestOutcome::kBlocked);
      EXPECT_EQ(r.FindHolder(1)->blocked, converted);
      // tm folds the pending mode in.
      EXPECT_EQ(r.total_mode(), Convert(Convert(own, requested), other));
    }
    EXPECT_TRUE(r.CheckInvariants().ok()) << r.ToString();
  }
}

// A blocked conversion is granted once the other holder leaves.
TEST_P(ConversionSweep, BlockedConversionGrantedOnRelease) {
  auto [own, other] = GetParam();
  if (!Compatible(own, other)) GTEST_SKIP();
  for (LockMode requested : kRealModes) {
    const LockMode converted = Convert(own, requested);
    if (converted == own || Compatible(converted, other)) continue;
    ResourceState r(1);
    ASSERT_TRUE(r.Request(1, own).ok());
    ASSERT_TRUE(r.Request(2, other).ok());
    ASSERT_TRUE(r.Request(1, requested).ok());
    EXPECT_EQ(r.Remove(2), (std::vector<TransactionId>{1}));
    EXPECT_EQ(r.FindHolder(1)->granted, converted);
    EXPECT_EQ(r.FindHolder(1)->blocked, LockMode::kNL);
    EXPECT_TRUE(r.CheckInvariants().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, NewRequestSweep,
    ::testing::Combine(::testing::ValuesIn(kRealModes),
                       ::testing::ValuesIn(kRealModes)),
    [](const ::testing::TestParamInfo<ModePair>& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             std::string(ToString(std::get<1>(info.param)));
    });

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ConversionSweep,
    ::testing::Combine(::testing::ValuesIn(kRealModes),
                       ::testing::ValuesIn(kRealModes)),
    [](const ::testing::TestParamInfo<ModePair>& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             std::string(ToString(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace twbg::lock
