// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Codec tests for the network wire protocol: round-trips for every
// message type, the frame splitter under adversarial delivery, and a
// deterministic fuzz pass asserting that NO byte sequence makes the
// decoder misbehave — malformed input is a clean Status, never UB.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace twbg::net {
namespace {

// Splitmix64: cheap deterministic byte source for the fuzz passes.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// The payload of an encoded frame (strips the length prefix).
std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

TEST(WireRequestTest, RoundTripsEveryType) {
  for (MsgType type :
       {MsgType::kBegin, MsgType::kAcquire, MsgType::kAwait, MsgType::kCommit,
        MsgType::kAbort, MsgType::kState, MsgType::kSetCost, MsgType::kDetect,
        MsgType::kProbeDeadlock, MsgType::kView, MsgType::kStats,
        MsgType::kPing}) {
    Request request;
    request.type = type;
    request.req_id = 0x0123456789abcdefULL;
    request.tid = 42;
    request.rid = 7;
    request.mode = lock::LockMode::kSIX;
    request.cost = 2.75;
    request.view = ServiceView::kOracle;

    Request decoded;
    ASSERT_TRUE(DecodeRequest(PayloadOf(EncodeRequest(request)), &decoded)
                    .ok())
        << MsgTypeName(type);
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.req_id, request.req_id);
    switch (type) {
      case MsgType::kAcquire:
        EXPECT_EQ(decoded.tid, 42u);
        EXPECT_EQ(decoded.rid, 7u);
        EXPECT_EQ(decoded.mode, lock::LockMode::kSIX);
        break;
      case MsgType::kAwait:
      case MsgType::kCommit:
      case MsgType::kAbort:
      case MsgType::kState:
        EXPECT_EQ(decoded.tid, 42u);
        break;
      case MsgType::kSetCost:
        EXPECT_EQ(decoded.tid, 42u);
        EXPECT_EQ(decoded.cost, 2.75);
        break;
      case MsgType::kView:
        EXPECT_EQ(decoded.view, ServiceView::kOracle);
        break;
      default:
        break;  // bodyless
    }
  }
}

TEST(WireResponseTest, RoundTripsResultFields) {
  Response response;
  response.type = MsgType::kDetect;
  response.req_id = 99;
  response.detect.report = "resolution report text\n";
  response.detect.aborted = {3, 1, 4};
  response.detect.cycles_detected = 2;
  response.detect.post_mortems = "  cycle {T1, T3}: ...\n";

  Response decoded;
  ASSERT_TRUE(
      DecodeResponse(PayloadOf(EncodeResponse(response)), &decoded).ok());
  EXPECT_EQ(decoded.type, MsgType::kDetect);
  EXPECT_EQ(decoded.req_id, 99u);
  EXPECT_EQ(decoded.code, StatusCode::kOk);
  EXPECT_EQ(decoded.detect.report, response.detect.report);
  EXPECT_EQ(decoded.detect.aborted, response.detect.aborted);
  EXPECT_EQ(decoded.detect.cycles_detected, 2u);
  EXPECT_EQ(decoded.detect.post_mortems, response.detect.post_mortems);
}

TEST(WireResponseTest, RoundTripsErrorHeaderWithoutBody) {
  Response response;
  response.type = MsgType::kBegin;
  response.req_id = 5;
  SetResponseStatus(Status::ResourceExhausted("daemon is draining"),
                    /*retry_after_us=*/1500, &response);
  response.tid = 77;  // must NOT be encoded on error

  Response decoded;
  ASSERT_TRUE(
      DecodeResponse(PayloadOf(EncodeResponse(response)), &decoded).ok());
  EXPECT_EQ(decoded.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.retry_after_us, 1500u);
  EXPECT_EQ(decoded.message, "daemon is draining");
  EXPECT_EQ(decoded.tid, 0u);
  Status status = ResponseStatus(decoded);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "daemon is draining");
}

TEST(WireResponseTest, RoundTripsStats) {
  Response response;
  response.type = MsgType::kStats;
  response.stats.live_txns = 10;
  response.stats.deadlock_victims = 2;
  response.stats.snapshot_epoch = 123;
  response.stats.num_shards = 8;
  response.stats.admission_rejects = 4;
  response.stats.resolutions_rejected = 1;
  response.stats.sessions_active = 9;
  response.stats.sessions_total = 100;
  response.stats.orphan_aborts = 3;

  Response decoded;
  ASSERT_TRUE(
      DecodeResponse(PayloadOf(EncodeResponse(response)), &decoded).ok());
  EXPECT_EQ(decoded.stats.live_txns, 10u);
  EXPECT_EQ(decoded.stats.sessions_total, 100u);
  EXPECT_EQ(decoded.stats.orphan_aborts, 3u);
}

TEST(WireDecodeTest, RejectsUnknownVersion) {
  Request request;
  request.type = MsgType::kPing;
  std::string payload = PayloadOf(EncodeRequest(request));
  payload[0] = 9;
  Request decoded;
  Status status = DecodeRequest(payload, &decoded);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("version"), std::string::npos);
}

TEST(WireDecodeTest, RejectsUnknownType) {
  Request request;
  request.type = MsgType::kPing;
  std::string payload = PayloadOf(EncodeRequest(request));
  payload[1] = 0x7f;
  Request decoded;
  EXPECT_TRUE(DecodeRequest(payload, &decoded).IsInvalidArgument());
}

TEST(WireDecodeTest, RejectsEveryTruncation) {
  Request request;
  request.type = MsgType::kAcquire;
  request.req_id = 8;
  request.tid = 1;
  request.rid = 2;
  request.mode = lock::LockMode::kX;
  const std::string payload = PayloadOf(EncodeRequest(request));
  for (size_t len = 0; len < payload.size(); ++len) {
    Request decoded;
    EXPECT_TRUE(
        DecodeRequest(payload.substr(0, len), &decoded).IsInvalidArgument())
        << "prefix of length " << len << " decoded";
  }
}

TEST(WireDecodeTest, RejectsTrailingBytes) {
  Request request;
  request.type = MsgType::kCommit;
  request.tid = 3;
  std::string payload = PayloadOf(EncodeRequest(request));
  payload.push_back('\0');
  Request decoded;
  EXPECT_TRUE(DecodeRequest(payload, &decoded).IsInvalidArgument());
}

TEST(WireDecodeTest, RejectsOutOfDomainEnums) {
  Request request;
  request.type = MsgType::kAcquire;
  request.tid = 1;
  request.rid = 1;
  std::string payload = PayloadOf(EncodeRequest(request));
  payload.back() = 0x66;  // the mode byte
  Request decoded;
  EXPECT_TRUE(DecodeRequest(payload, &decoded).IsInvalidArgument());
}

TEST(FrameReaderTest, ReassemblesByteAtATime) {
  Request request;
  request.type = MsgType::kSetCost;
  request.req_id = 17;
  request.tid = 4;
  request.cost = 0.5;
  const std::string frame = EncodeRequest(request);

  FrameReader reader;
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Append(&frame[i], 1);
    EXPECT_TRUE(reader.Next(&payload).IsWouldBlock());
  }
  reader.Append(&frame.back(), 1);
  ASSERT_TRUE(reader.Next(&payload).ok());
  Request decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.req_id, 17u);
  EXPECT_EQ(decoded.cost, 0.5);
  EXPECT_TRUE(reader.Next(&payload).IsWouldBlock());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, SplitsCoalescedFrames) {
  std::string stream;
  for (uint32_t tid = 1; tid <= 40; ++tid) {
    Request request;
    request.type = MsgType::kAwait;
    request.req_id = tid;
    request.tid = tid;
    stream += EncodeRequest(request);
  }
  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  for (uint32_t tid = 1; tid <= 40; ++tid) {
    std::string payload;
    ASSERT_TRUE(reader.Next(&payload).ok());
    Request decoded;
    ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
    EXPECT_EQ(decoded.tid, tid);
  }
  std::string payload;
  EXPECT_TRUE(reader.Next(&payload).IsWouldBlock());
}

TEST(FrameReaderTest, RejectsOversizedLength) {
  const uint32_t length = kMaxFrameBytes + 1;
  char prefix[4];
  std::memcpy(prefix, &length, sizeof(length));
  FrameReader reader;
  reader.Append(prefix, sizeof(prefix));
  std::string payload;
  Status status = reader.Next(&payload);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("cap"), std::string::npos);
}

// Fuzz: random byte blobs through the frame reader + both decoders.
// Nothing to assert beyond "returns, and errors are clean Statuses" —
// ASAN/UBSAN builds turn any overread into a hard failure.
TEST(WireFuzzTest, RandomBytesNeverMisbehave) {
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    const size_t size = rng.Next() % 96;
    std::string blob(size, '\0');
    for (char& c : blob) c = static_cast<char>(rng.Next());
    Request request;
    Response response;
    (void)DecodeRequest(blob, &request);
    (void)DecodeResponse(blob, &response);

    FrameReader reader;
    reader.Append(blob.data(), blob.size());
    std::string payload;
    for (int pulls = 0; pulls < 8; ++pulls) {
      if (!reader.Next(&payload).ok()) break;
      (void)DecodeRequest(payload, &request);
    }
  }
}

// Fuzz: take a VALID encoded request and flip bytes — the decoder must
// either succeed (the mutation hit a don't-care bit) or return
// InvalidArgument, never anything else.
TEST(WireFuzzTest, MutatedValidFramesFailCleanly) {
  Rng rng(4242);
  Request request;
  request.type = MsgType::kAcquire;
  request.req_id = 1;
  request.tid = 2;
  request.rid = 3;
  request.mode = lock::LockMode::kIX;
  const std::string payload = PayloadOf(EncodeRequest(request));
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = payload;
    const int flips = 1 + static_cast<int>(rng.Next() % 3);
    for (int i = 0; i < flips; ++i) {
      mutated[rng.Next() % mutated.size()] ^=
          static_cast<char>(1u << (rng.Next() % 8));
    }
    Request decoded;
    Status status = DecodeRequest(mutated, &decoded);
    EXPECT_TRUE(status.ok() || status.IsInvalidArgument())
        << status.ToString();
  }
}

}  // namespace
}  // namespace twbg::net
