// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Unit tests for the robustness building blocks (retry backoff, admission
// watermarks, fault plans) and for the uniform Validate() contract on
// every options struct with a Create-style factory.

#include "txn/robustness/robustness.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/factory.h"
#include "sim/simulator.h"
#include "txn/concurrent_service.h"
#include "txn/transaction_manager.h"

namespace twbg::robustness {
namespace {

TEST(RetryBackoffTest, DeterministicUnderSeed) {
  RetryOptions options;
  options.backoff_base = 2;
  options.backoff_cap = 50;
  RetryBackoff a(options, 42);
  RetryBackoff b(options, 42);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextDelay(), b.NextDelay()) << "draw " << i;
  }
  RetryBackoff c(options, 43);
  bool diverged = false;
  RetryBackoff d(options, 42);
  for (int i = 0; i < 32; ++i) {
    if (c.NextDelay() != d.NextDelay()) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds give different sequences
}

TEST(RetryBackoffTest, StaysWithinBounds) {
  RetryOptions options;
  options.backoff_base = 3;
  options.backoff_cap = 20;
  RetryBackoff backoff(options, 7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t delay = backoff.NextDelay();
    EXPECT_GE(delay, options.backoff_base);
    EXPECT_LE(delay, options.backoff_cap);
  }
}

TEST(RetryBackoffTest, ExhaustionAndReset) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryBackoff backoff(options, 1);
  EXPECT_FALSE(backoff.Exhausted());
  (void)backoff.NextDelay();
  (void)backoff.NextDelay();
  EXPECT_FALSE(backoff.Exhausted());
  (void)backoff.NextDelay();
  EXPECT_TRUE(backoff.Exhausted());
  EXPECT_EQ(backoff.attempts(), 3u);
  backoff.Reset();
  EXPECT_FALSE(backoff.Exhausted());
  EXPECT_EQ(backoff.attempts(), 0u);

  RetryOptions unlimited;  // max_attempts = 0
  RetryBackoff forever(unlimited, 1);
  for (int i = 0; i < 100; ++i) (void)forever.NextDelay();
  EXPECT_FALSE(forever.Exhausted());
}

TEST(RetryOptionsTest, Validate) {
  RetryOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  RetryOptions zero_base;
  zero_base.backoff_base = 0;
  EXPECT_TRUE(zero_base.Validate().IsInvalidArgument());
  RetryOptions cap_below_base;
  cap_below_base.backoff_base = 10;
  cap_below_base.backoff_cap = 5;
  EXPECT_TRUE(cap_below_base.Validate().IsInvalidArgument());
}

TEST(WatermarkAdmissionTest, DefaultAdmitsEverything) {
  WatermarkAdmission policy{AdmissionOptions{}};
  AdmissionContext ctx;
  ctx.inflight_txns = 1'000'000;
  ctx.queue_depth = 1'000'000;
  EXPECT_TRUE(policy.AdmitBegin(ctx).ok());
  EXPECT_TRUE(policy.AdmitAcquire(ctx).ok());
}

TEST(WatermarkAdmissionTest, EnforcesWatermarks) {
  AdmissionOptions options;
  options.max_inflight_txns = 4;
  options.queue_depth_watermark = 3;
  WatermarkAdmission policy(options);
  AdmissionContext ctx;
  ctx.inflight_txns = 3;
  EXPECT_TRUE(policy.AdmitBegin(ctx).ok());
  ctx.inflight_txns = 4;
  EXPECT_TRUE(policy.AdmitBegin(ctx).IsResourceExhausted());
  ctx.queue_depth = 2;
  EXPECT_TRUE(policy.AdmitAcquire(ctx).ok());
  ctx.queue_depth = 3;
  EXPECT_TRUE(policy.AdmitAcquire(ctx).IsResourceExhausted());
}

TEST(AdmissionOptionsTest, ValidateRejectsWatermarkOfOne) {
  // A watermark of 1 would reject every request that finds any waiter —
  // including the retry that is supposed to drain the queue.
  AdmissionOptions options;
  options.queue_depth_watermark = 1;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.queue_depth_watermark = 2;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  FaultPlanOptions options;
  options.num_faults = 8;
  Result<FaultPlan> a = FaultPlan::Random(123, options);
  Result<FaultPlan> b = FaultPlan::Random(123, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->faults.size(), 8u);
  EXPECT_EQ(a->ToString(), b->ToString());
  Result<FaultPlan> c = FaultPlan::Random(124, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST(FaultPlanTest, RandomValidatesOptions) {
  FaultPlanOptions bad;
  bad.max_at = 0;
  EXPECT_TRUE(FaultPlan::Random(1, bad).status().IsInvalidArgument());
}

TEST(FaultInjectorTest, EachFaultFiresAtMostOnce) {
  FaultPlan plan;
  Fault crash;
  crash.kind = FaultKind::kCrashTxn;
  crash.txn = 3;
  crash.at = 5;
  plan.faults.push_back(crash);
  Fault drop;
  drop.kind = FaultKind::kDropWakeup;
  drop.txn = 3;
  plan.faults.push_back(drop);
  Fault stall;
  stall.kind = FaultKind::kStallShard;
  stall.shard = 1;
  stall.at = 9;
  plan.faults.push_back(stall);

  FaultInjector injector(plan);
  EXPECT_EQ(injector.remaining(), 3u);
  EXPECT_FALSE(injector.TakeAcquireFault(3, 4).has_value());
  ASSERT_TRUE(injector.TakeAcquireFault(3, 5).has_value());
  EXPECT_FALSE(injector.TakeAcquireFault(3, 5).has_value());  // once only
  EXPECT_TRUE(injector.TakeDropWakeup(3));
  EXPECT_FALSE(injector.TakeDropWakeup(3));
  EXPECT_FALSE(injector.TakeShardStall(0).has_value());
  EXPECT_TRUE(injector.TakeShardStall(1).has_value());
  EXPECT_EQ(injector.injected(), 3u);
  EXPECT_EQ(injector.remaining(), 0u);
}

TEST(FaultInjectorTest, TickFaultsDrainByTickButNotDropWakeups) {
  FaultPlan plan;
  Fault crash;
  crash.kind = FaultKind::kCrashTxn;
  crash.txn = 1;
  crash.at = 7;
  plan.faults.push_back(crash);
  Fault delay;
  delay.kind = FaultKind::kDelayGrant;
  delay.txn = 2;
  delay.at = 7;
  plan.faults.push_back(delay);
  Fault drop;
  drop.kind = FaultKind::kDropWakeup;
  drop.txn = 1;
  drop.at = 7;  // address ignored for drop-wakeup faults
  plan.faults.push_back(drop);

  FaultInjector injector(plan);
  EXPECT_TRUE(injector.TakeTickFaults(6).empty());
  std::vector<Fault> fired = injector.TakeTickFaults(7);
  ASSERT_EQ(fired.size(), 2u);
  std::set<FaultKind> kinds{fired[0].kind, fired[1].kind};
  EXPECT_TRUE(kinds.count(FaultKind::kCrashTxn));
  EXPECT_TRUE(kinds.count(FaultKind::kDelayGrant));
  EXPECT_TRUE(injector.TakeTickFaults(7).empty());  // drained
  EXPECT_TRUE(injector.TakeDropWakeup(1));          // still pending
}

TEST(RobustnessOptionsTest, ValidateAggregatesMemberGroups) {
  RobustnessOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  RobustnessOptions bad_retry;
  bad_retry.retry.backoff_base = 0;
  EXPECT_TRUE(bad_retry.Validate().IsInvalidArgument());
  RobustnessOptions bad_admission;
  bad_admission.admission.queue_depth_watermark = 1;
  EXPECT_TRUE(bad_admission.Validate().IsInvalidArgument());
  RobustnessOptions bad_degradation;
  bad_degradation.degradation.pause_budget_ns = 100;
  bad_degradation.degradation.sweep_patience = 0;
  EXPECT_TRUE(bad_degradation.Validate().IsInvalidArgument());
}

// Uniform Validate() contract: each Create-style factory rejects its bad
// options with kInvalidArgument instead of crashing.

TEST(ValidateContractTest, TransactionManagerCreate) {
  txn::TransactionManagerOptions options;
  options.robustness.retry.backoff_base = 0;
  EXPECT_TRUE(
      txn::TransactionManager::Create(options).status().IsInvalidArgument());
  EXPECT_TRUE(txn::TransactionManager::Create({}).ok());
}

TEST(ValidateContractTest, ConcurrentServiceCreate) {
  txn::ConcurrentServiceOptions options;
  options.robustness.admission.queue_depth_watermark = 1;
  EXPECT_TRUE(txn::ConcurrentLockService::Create(options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ValidateContractTest, SimulatorCreate) {
  {
    sim::SimConfig config;
    config.workload.concurrency = 0;
    EXPECT_TRUE(
        sim::Simulator::Create(config, baselines::MakeStrategy("none"))
            .status()
            .IsInvalidArgument());
  }
  {
    sim::SimConfig config;
    config.record_trace = true;
    config.trace_capacity = 0;
    EXPECT_TRUE(
        sim::Simulator::Create(config, baselines::MakeStrategy("none"))
            .status()
            .IsInvalidArgument());
  }
  {
    sim::SimConfig config;
    config.robustness.deadline.lock_wait = 5;
    config.robustness.retry.backoff_cap = 0;
    EXPECT_TRUE(
        sim::Simulator::Create(config, baselines::MakeStrategy("none"))
            .status()
            .IsInvalidArgument());
  }
  EXPECT_TRUE(sim::Simulator::Create({}, nullptr).status().IsInvalidArgument());
  sim::SimConfig config;
  config.workload.num_transactions = 5;
  config.workload.concurrency = 2;
  Result<std::unique_ptr<sim::Simulator>> sim =
      sim::Simulator::Create(config, baselines::MakeStrategy("hwtwbg-periodic"));
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ((*sim)->Run().committed, 5u);
}

// The legacy TransactionManagerOptions constructor shim was removed:
// Create() with default options is the continuous-engine spelling.
TEST(ValidateContractTest, DefaultCreateIsContinuousEngine) {
  Result<std::unique_ptr<txn::ConcurrentLockService>> service =
      txn::ConcurrentLockService::Create({});
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->num_shards(), 1u);
  const lock::TransactionId t = *(*service)->Begin();
  EXPECT_TRUE((*service)->AcquireBlocking(t, 1, lock::LockMode::kX).ok());
  EXPECT_TRUE((*service)->Commit(t).ok());
}

}  // namespace
}  // namespace twbg::robustness
