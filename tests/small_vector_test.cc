// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// SmallVector / SortedSmallSet unit suite: inline-to-heap transition,
// order-stable insert/erase, the capacity-reusing copy-assign contract,
// and SortedSmallSet's std::set-equivalent ordered iteration.

#include "common/small_vector.h"

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace twbg::common {
namespace {

TEST(SmallVectorTest, StartsInlineGrowsToHeap) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  v.push_back(4);               // spills to heap
  EXPECT_GT(v.capacity(), 4u);
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InsertAndEraseAreOrderStable) {
  SmallVector<int, 2> v;
  for (int i : {1, 2, 4, 5}) v.push_back(i);
  v.insert(v.begin() + 2, 3);  // 1 2 3 4 5
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i + 1);
  v.erase(v.begin() + 1);  // 1 3 4 5
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[3], 5);
  v.erase(v.begin(), v.begin() + 2);  // 4 5
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4);
  EXPECT_EQ(v[1], 5);
}

TEST(SmallVectorTest, CopyAssignReusesCapacity) {
  SmallVector<int, 2> dst;
  for (int i = 0; i < 64; ++i) dst.push_back(i);  // heap capacity >= 64
  const size_t cap = dst.capacity();
  const int* data = dst.data();

  SmallVector<int, 2> src;
  for (int i = 0; i < 10; ++i) src.push_back(100 + i);
  dst = src;
  // Same buffer, same capacity: the copy refilled in place.
  EXPECT_EQ(dst.capacity(), cap);
  EXPECT_EQ(dst.data(), data);
  ASSERT_EQ(dst.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dst[i], 100 + i);
}

TEST(SmallVectorTest, CopyAssignGrowsWhenNeeded) {
  SmallVector<int, 2> dst;
  SmallVector<int, 2> src;
  for (int i = 0; i < 100; ++i) src.push_back(i);
  dst = src;
  ASSERT_EQ(dst.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dst[i], i);
  EXPECT_EQ(src.size(), 100u);  // source untouched
}

TEST(SmallVectorTest, MoveAssignStealsHeapBuffer) {
  SmallVector<int, 2> src;
  for (int i = 0; i < 50; ++i) src.push_back(i);
  const int* buffer = src.data();
  SmallVector<int, 2> dst;
  dst = std::move(src);
  EXPECT_EQ(dst.data(), buffer);  // stolen, not copied
  ASSERT_EQ(dst.size(), 50u);
  EXPECT_TRUE(src.empty());
  src.push_back(7);  // moved-from vector remains usable
  EXPECT_EQ(src[0], 7);
}

TEST(SmallVectorTest, NonTrivialElementLifetimes) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back(std::string(64, 'x'));  // heap string, spills the vector too
  v.insert(v.begin() + 1, "inserted");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], "inserted");
  EXPECT_EQ(v[2], "beta");
  v.erase(v.begin());
  EXPECT_EQ(v[0], "inserted");
  SmallVector<std::string, 2> copy;
  copy = v;
  EXPECT_EQ(copy, v);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(copy.size(), 3u);
}

TEST(SmallVectorTest, ResizeUpAndDown) {
  SmallVector<int, 4> v;
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[5], 0);
  v[5] = 42;
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  v.resize(8);
  EXPECT_EQ(v[7], 0);
}

TEST(SortedSmallSetTest, MatchesStdSetOrder) {
  SortedSmallSet<uint32_t, 8> set;
  std::set<uint32_t> oracle;
  Rng rng(0x5e7);
  for (int step = 0; step < 20000; ++step) {
    const uint32_t value = static_cast<uint32_t>(rng.NextBelow(64));
    if (rng.NextBelow(3) == 0) {
      EXPECT_EQ(set.Erase(value), oracle.erase(value) > 0);
    } else {
      EXPECT_EQ(set.Insert(value), oracle.insert(value).second);
    }
    ASSERT_EQ(set.size(), oracle.size());
  }
  // Iteration order must be ascending — exactly std::set's.
  std::vector<uint32_t> flat(set.begin(), set.end());
  std::vector<uint32_t> expected(oracle.begin(), oracle.end());
  EXPECT_EQ(flat, expected);
}

TEST(SortedSmallSetTest, InsertEraseContains) {
  SortedSmallSet<int, 4> set;
  EXPECT_TRUE(set.Insert(3));
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(3));  // duplicate
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_TRUE(set.Erase(1));
  EXPECT_FALSE(set.Erase(1));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(*set.begin(), 3);
}

}  // namespace
}  // namespace twbg::common
