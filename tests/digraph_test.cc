// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace twbg::graph {
namespace {

TEST(DigraphTest, EmptyGraphIsAcyclic) {
  Digraph g(0);
  EXPECT_FALSE(g.HasCycle());
  Digraph g5(5);
  EXPECT_FALSE(g5.HasCycle());
}

TEST(DigraphTest, EdgeCount) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutEdges(0).size(), 2u);
  EXPECT_EQ(g.OutEdges(2).size(), 0u);
}

TEST(DigraphTest, SelfLoopIsACycle) {
  Digraph g(2);
  g.AddEdge(1, 1);
  ASSERT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<NodeId>{1}));
}

TEST(DigraphTest, ChainIsAcyclic) {
  Digraph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_FALSE(g.FindCycle().has_value());
}

TEST(DigraphTest, DiamondIsAcyclic) {
  // Two paths converging is not a cycle (tests gray/black distinction).
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  EXPECT_FALSE(g.HasCycle());
}

TEST(DigraphTest, FindCycleReturnsActualCycle) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);  // cycle 1-2-3
  g.AddEdge(3, 4);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  // Verify it is a real cycle: consecutive edges exist.
  const auto& c = *cycle;
  EXPECT_EQ(std::set<NodeId>(c.begin(), c.end()),
            (std::set<NodeId>{1, 2, 3}));
  for (size_t i = 0; i < c.size(); ++i) {
    NodeId from = c[i];
    NodeId to = c[(i + 1) % c.size()];
    const auto& out = g.OutEdges(from);
    EXPECT_NE(std::find(out.begin(), out.end(), to), out.end())
        << from << "->" << to;
  }
}

TEST(DigraphTest, CycleInSecondComponent) {
  Digraph g(6);
  g.AddEdge(0, 1);  // acyclic component first
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, RandomGraphsAgreeWithDfsOracle) {
  // Cross-check HasCycle against a simple recursive reference on random
  // sparse graphs.
  common::Rng rng(42);
  for (int round = 0; round < 100; ++round) {
    const size_t n = 2 + rng.NextBelow(12);
    Digraph g(n);
    const size_t edges = rng.NextBelow(2 * n);
    for (size_t i = 0; i < edges; ++i) {
      g.AddEdge(static_cast<NodeId>(rng.NextBelow(n)),
                static_cast<NodeId>(rng.NextBelow(n)));
    }
    // Reference: Kahn's algorithm — cycle iff topological sort incomplete.
    std::vector<size_t> indegree(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.OutEdges(u)) ++indegree[v];
    }
    std::vector<NodeId> ready;
    for (NodeId u = 0; u < n; ++u) {
      if (indegree[u] == 0) ready.push_back(u);
    }
    size_t removed = 0;
    while (!ready.empty()) {
      NodeId u = ready.back();
      ready.pop_back();
      ++removed;
      for (NodeId v : g.OutEdges(u)) {
        if (--indegree[v] == 0) ready.push_back(v);
      }
    }
    EXPECT_EQ(g.HasCycle(), removed != n) << "round " << round;
  }
}

}  // namespace
}  // namespace twbg::graph
