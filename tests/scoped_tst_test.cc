// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the scoped (reachable-region) TST construction and its
// observable equivalence with full-table continuous detection.

#include "core/scoped_tst.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/continuous_detector.h"
#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

TEST(ScopedTstTest, UnknownRootYieldsEmptyTst) {
  lock::LockManager lm;
  ScopedTst scoped = BuildReachableTst(lm, 42);
  EXPECT_EQ(scoped.tst.size(), 0u);
  EXPECT_EQ(scoped.resources_expanded, 0u);
}

TEST(ScopedTstTest, IsolatedTransactionSeesOnlyItsResources) {
  lock::LockManager lm;
  // Cluster A: T1/T2 contend on R1.  Cluster B: T3/T4 on R2.  Disjoint.
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(4, 2, kS).ok());
  ScopedTst scoped = BuildReachableTst(lm, 2);
  EXPECT_EQ(scoped.resources_expanded, 1u);
  EXPECT_TRUE(scoped.tst.Contains(1));
  EXPECT_TRUE(scoped.tst.Contains(2));
  EXPECT_FALSE(scoped.tst.Contains(3));
  EXPECT_FALSE(scoped.tst.Contains(4));
}

TEST(ScopedTstTest, ClosureFollowsWaitChains) {
  lock::LockManager lm;
  // T3 waits on T2 (R2), T2 waits on T1 (R1); rooted at T1 the closure
  // covers everything that waits on it.
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 2, kX).ok());
  ScopedTst scoped = BuildReachableTst(lm, 1);
  EXPECT_TRUE(scoped.tst.Contains(2));
  EXPECT_TRUE(scoped.tst.Contains(3));
  EXPECT_EQ(scoped.resources_expanded, 2u);
}

TEST(ScopedTstTest, Example41RegionMatchesFullBuild) {
  lock::LockManager lm;
  BuildExample41(lm);
  // Everything is one wait region; the scoped build from any member must
  // equal the full TST.
  Tst full = Tst::Build(lm.table());
  for (lock::TransactionId root : {3u, 7u, 8u}) {
    ScopedTst scoped = BuildReachableTst(lm, root);
    EXPECT_EQ(scoped.tst.size(), full.size()) << "root " << root;
    EXPECT_EQ(scoped.tst.NumEdges(), full.NumEdges()) << "root " << root;
    EXPECT_EQ(scoped.tst.ToString(), full.ToString()) << "root " << root;
  }
}

TEST(ScopedTstTest, ScopedContinuousDetectionMatchesFull) {
  // Property: on random tables, continuous OnBlock with scoped and full
  // builds make identical resolution decisions.
  common::Rng rng(424242);
  for (int round = 0; round < 150; ++round) {
    lock::LockManager scoped_lm;
    lock::LockManager full_lm;
    lock::TransactionId last_blocked = 0;
    for (int op = 0; op < 60; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, 8));
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, 4));
      lock::LockMode mode = lock::kRealModes[rng.NextBelow(5)];
      Result<lock::RequestOutcome> a = scoped_lm.Acquire(tid, rid, mode);
      Result<lock::RequestOutcome> b = full_lm.Acquire(tid, rid, mode);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok() && *a == lock::RequestOutcome::kBlocked) last_blocked = tid;
    }
    if (last_blocked == 0) continue;

    DetectorOptions scoped_options;
    scoped_options.scoped_continuous_build = true;
    DetectorOptions full_options;
    full_options.scoped_continuous_build = false;
    CostTable scoped_costs;
    CostTable full_costs;
    ContinuousDetector scoped_detector(scoped_options);
    ContinuousDetector full_detector(full_options);

    ResolutionReport scoped_report =
        scoped_detector.OnBlock(scoped_lm, scoped_costs, last_blocked);
    ResolutionReport full_report =
        full_detector.OnBlock(full_lm, full_costs, last_blocked);

    ASSERT_EQ(scoped_report.cycles_detected, full_report.cycles_detected)
        << "round " << round;
    ASSERT_EQ(scoped_report.aborted, full_report.aborted);
    ASSERT_EQ(scoped_report.granted, full_report.granted);
    ASSERT_EQ(scoped_report.repositioned, full_report.repositioned);
    ASSERT_EQ(scoped_lm.table().ToString(), full_lm.table().ToString());
    // The scoped pass never sees more than the full one.
    ASSERT_LE(scoped_report.num_transactions, full_report.num_transactions);
    ASSERT_LE(scoped_report.num_edges, full_report.num_edges);
  }
}

TEST(ScopedTstTest, ScopedBuildIsSmallerOnPartitionedLoad) {
  // 30 disjoint two-transaction clusters; a scoped build from one cluster
  // touches 1 resource, the full build all 30.
  lock::LockManager lm;
  for (uint32_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(lm.Acquire(2 * i + 1, i + 1, kX).ok());
    ASSERT_TRUE(lm.Acquire(2 * i + 2, i + 1, kS).ok());
  }
  ScopedTst scoped = BuildReachableTst(lm, 2);
  Tst full = Tst::Build(lm.table());
  EXPECT_EQ(scoped.resources_expanded, 1u);
  EXPECT_EQ(scoped.tst.size(), 2u);
  EXPECT_EQ(full.size(), 60u);
}

}  // namespace
}  // namespace twbg::core
