// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for minimal-deadlock-set analysis (Definitions 1-3).

#include "core/mds.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/examples_catalog.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

TEST(MdsTest, DeadlockFreeTableHasNone) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  EXPECT_TRUE(FindMinimalDeadlockSets(lm.table()).empty());
}

TEST(MdsTest, Example51MinimalSetIsTheInnerCycle) {
  lock::LockManager lm;
  BuildExample51(lm);
  auto sets = FindMinimalDeadlockSets(lm.table());
  // {T1,T2} is contained in {T1,T2,T3}, so only the inner cycle remains.
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (std::set<lock::TransactionId>{1, 2}));
}

TEST(MdsTest, Example41MinimalSetIsSmallerThanTheInnermostCycle) {
  lock::LockManager lm;
  BuildExample41(lm);
  auto sets = FindMinimalDeadlockSets(lm.table());
  // The graph cycles all route through the W-chain members T5/T6/T9, but
  // mid-queue members are droppable (completing them re-links the queue),
  // so the minimal sets are smaller than any cycle: T7 stays blocked by
  // T1's pending SIX, T2's pending S, or T6's queued S respectively, and
  // T3 -> T8 -> T7 closes each loop on R2.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::set<lock::TransactionId>{1, 3, 7, 8}));
  EXPECT_EQ(sets[1], (std::set<lock::TransactionId>{2, 3, 7, 8}));
  EXPECT_EQ(sets[2], (std::set<lock::TransactionId>{3, 6, 7, 8}));
  for (const auto& set : sets) {
    EXPECT_TRUE(IsDeadlockSet(lm.table(), set));
  }
  // The innermost cycle set itself is a (non-minimal) deadlock set: T9 is
  // a droppable mid-queue member.
  EXPECT_TRUE(IsDeadlockSet(lm.table(), {3, 6, 7, 8, 9}));
}

TEST(MdsTest, DisjointDeadlocksYieldOneSetEach) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 2, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 3, kX).ok());
  ASSERT_TRUE(lm.Acquire(4, 4, kX).ok());
  ASSERT_TRUE(lm.Acquire(3, 4, kX).ok());
  ASSERT_TRUE(lm.Acquire(4, 3, kX).ok());
  auto sets = FindMinimalDeadlockSets(lm.table());
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::set<lock::TransactionId>{1, 2}));
  EXPECT_EQ(sets[1], (std::set<lock::TransactionId>{3, 4}));
}

TEST(MdsTest, IsDeadlockSetAgreesWithDefinition1) {
  lock::LockManager lm;
  BuildExample51(lm);
  // Both cycles are deadlock sets.
  EXPECT_TRUE(IsDeadlockSet(lm.table(), {1, 2}));
  EXPECT_TRUE(IsDeadlockSet(lm.table(), {1, 2, 3}));
  // Proper subsets of the minimal set are not.
  EXPECT_FALSE(IsDeadlockSet(lm.table(), {1}));
  EXPECT_FALSE(IsDeadlockSet(lm.table(), {2}));
  // T3 alone: once T1/T2 complete, T3 gets R1 — not a deadlock set.
  EXPECT_FALSE(IsDeadlockSet(lm.table(), {3}));
  // And the empty set never is.
  EXPECT_FALSE(IsDeadlockSet(lm.table(), {}));
}

TEST(MdsTest, ContagionVictimsAreNotDeadlockSets) {
  lock::LockManager lm;
  BuildExample41(lm);
  // T4 is stuck behind the deadlock but {T4} can run once others finish.
  EXPECT_FALSE(IsDeadlockSet(lm.table(), {4}));
  // The innermost cycle is.
  EXPECT_TRUE(IsDeadlockSet(lm.table(), {3, 6, 7, 8, 9}));
}

TEST(MdsTest, RandomizedMinimalSetsSatisfyDefinitionAndMinimality) {
  common::Rng rng(20260704);
  int verified = 0;
  for (int round = 0; round < 120 && verified < 30; ++round) {
    lock::LockManager lm;
    for (int op = 0; op < 70; ++op) {
      (void)lm.Acquire(
          static_cast<lock::TransactionId>(rng.NextInRange(1, 8)),
          static_cast<lock::ResourceId>(rng.NextInRange(1, 3)),
          lock::kRealModes[rng.NextBelow(5)]);
    }
    auto sets = FindMinimalDeadlockSets(lm.table());
    if (sets.empty()) continue;
    for (const auto& mds : sets) {
      // The definition holds...
      ASSERT_TRUE(IsDeadlockSet(lm.table(), mds)) << lm.table().ToString();
      // ...and dropping any single member breaks it (necessary condition
      // of minimality).
      for (lock::TransactionId member : mds) {
        std::set<lock::TransactionId> smaller = mds;
        smaller.erase(member);
        ASSERT_FALSE(IsDeadlockSet(lm.table(), smaller))
            << "dropping T" << member << " of a 'minimal' set kept it "
            << "deadlocked\n"
            << lm.table().ToString();
      }
      ++verified;
    }
  }
  EXPECT_GT(verified, 0);
}

}  // namespace
}  // namespace twbg::core
