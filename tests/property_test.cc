// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Cross-cutting randomized property tests tying the paper's theorems to
// the implementation:
//
//   * Theorem 3.1  — UPR ordering makes the first blocked conversion
//                    representative: if it cannot be granted, none behind
//                    it can.
//   * Lemma 4.1    — after a TDR-2 repositioning, no AV member lies on
//                    any cycle.
//   * Lemma 4      — on a minimal deadlock set (an elementary cycle with
//                    no chords into it), members have unique in/out edges.
//   * Grant safety — granted mode sets are always pairwise compatible.
//   * Determinism  — ECR edges depend only on the lock-table state.
//   * Failure injection — random aborts at arbitrary moments never break
//                    invariants or strand grantable requests.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "core/oracle.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

namespace twbg {
namespace {

using lock::LockMode;
using lock::LockManager;

// Drives a lock manager into a random state.
void Randomize(LockManager& lm, common::Rng& rng, int txns, int resources,
               int ops) {
  for (int op = 0; op < ops; ++op) {
    lock::TransactionId tid =
        static_cast<lock::TransactionId>(rng.NextInRange(1, txns));
    if (rng.NextBernoulli(0.1)) {
      lm.ReleaseAll(tid);
      continue;
    }
    lock::ResourceId rid =
        static_cast<lock::ResourceId>(rng.NextInRange(1, resources));
    (void)lm.Acquire(tid, rid, lock::kRealModes[rng.NextBelow(5)]);
  }
}

class RandomizedProperties : public ::testing::TestWithParam<uint64_t> {};

// Theorem 3.1: in every resting resource state, if the FIRST blocked
// conversion cannot be granted then no later blocked conversion can be
// granted either.  (Our Reschedule relies on this to stop early.)
TEST_P(RandomizedProperties, Theorem31FirstUpgraderIsRepresentative) {
  common::Rng rng(GetParam());
  for (int round = 0; round < 120; ++round) {
    LockManager lm;
    Randomize(lm, rng, 8, 3, 70);
    for (const auto& [rid, state] : lm.table()) {
      const auto& holders = state.holders();
      auto grantable = [&](size_t index) {
        for (size_t j = 0; j < holders.size(); ++j) {
          if (j != index &&
              !Compatible(holders[index].blocked, holders[j].granted)) {
            return false;
          }
        }
        return true;
      };
      // At rest nothing should be grantable at all (invariant I3), which
      // subsumes the theorem; check the full statement anyway.
      bool first_blocked_seen = false;
      bool first_grantable = false;
      for (size_t i = 0; i < holders.size(); ++i) {
        if (!holders[i].IsBlocked()) break;
        if (!first_blocked_seen) {
          first_blocked_seen = true;
          first_grantable = grantable(i);
        } else if (!first_grantable) {
          ASSERT_FALSE(grantable(i))
              << "Theorem 3.1 violated on " << state.ToString();
        }
      }
    }
  }
}

// Grant safety: granted modes on one resource are pairwise compatible.
TEST_P(RandomizedProperties, GrantedModesArePairwiseCompatible) {
  common::Rng rng(GetParam() ^ 0x9e3779b9);
  for (int round = 0; round < 120; ++round) {
    LockManager lm;
    Randomize(lm, rng, 8, 3, 70);
    for (const auto& [rid, state] : lm.table()) {
      const auto& holders = state.holders();
      for (size_t i = 0; i < holders.size(); ++i) {
        for (size_t j = i + 1; j < holders.size(); ++j) {
          ASSERT_TRUE(Compatible(holders[i].granted, holders[j].granted))
              << state.ToString();
        }
      }
    }
  }
}

// Lemma 4.1: after applying TDR-2 at any eligible junction, no AV member
// lies on any cycle of the rebuilt graph.
TEST_P(RandomizedProperties, Lemma41AvMembersLeaveAllCycles) {
  common::Rng rng(GetParam() ^ 0xabcdef);
  int applied = 0;
  for (int round = 0; round < 200 && applied < 40; ++round) {
    LockManager lm;
    Randomize(lm, rng, 8, 3, 80);
    // Find an eligible junction: a queue member whose blocked mode is
    // compatible with tm and with a non-empty ST ahead of it.
    for (const auto& [rid, state] : lm.table()) {
      for (const lock::QueueEntry& q : state.queue()) {
        Result<lock::ResourceState::AvSt> split = state.ComputeAvSt(q.tid);
        if (!split.ok() || split->st.empty()) continue;
        lock::LockTable table = lm.table();  // mutate a copy
        lock::ResourceState* mutable_state = table.FindMutable(rid);
        ASSERT_TRUE(mutable_state->ApplyTdr2(q.tid).ok());
        core::HwTwbg graph = core::HwTwbg::Build(table);
        std::set<lock::TransactionId> av;
        for (const lock::QueueEntry& entry : split->av) av.insert(entry.tid);
        for (const auto& cycle : graph.ElementaryCycles()) {
          for (lock::TransactionId tid : cycle) {
            ASSERT_EQ(av.count(tid), 0u)
                << "AV member T" << tid << " still on a cycle";
          }
        }
        ++applied;
        break;
      }
    }
  }
  EXPECT_GT(applied, 0);  // the generator must produce eligible junctions
}

// Lemma 4: members of a minimal deadlock set have unique incoming and
// outgoing edges *within the set*.  Elementary cycles that form an SCC of
// exactly their own vertices approximate MDSes; check edge uniqueness
// inside such cycles.
TEST_P(RandomizedProperties, Lemma4UniqueEdgesInsideElementaryCycles) {
  common::Rng rng(GetParam() ^ 0x5a5a5a);
  for (int round = 0; round < 100; ++round) {
    LockManager lm;
    Randomize(lm, rng, 7, 3, 60);
    core::HwTwbg graph = core::HwTwbg::Build(lm.table());
    for (const auto& cycle : graph.ElementaryCycles()) {
      std::set<lock::TransactionId> members(cycle.begin(), cycle.end());
      // Within an elementary cycle every vertex has exactly one incoming
      // and one outgoing cycle edge by construction; the interesting
      // check is that our DecomposeCycle walks it consistently.
      auto trrps = graph.DecomposeCycle(cycle);
      ASSERT_TRUE(trrps.ok());
      size_t total_nodes = 0;
      for (const core::Trrp& trrp : *trrps) {
        ASSERT_GE(trrp.nodes.size(), 2u);
        total_nodes += trrp.nodes.size() - 1;  // junctions shared
      }
      ASSERT_EQ(total_nodes, cycle.size());
    }
  }
}

// ECR determinism: the edge list is a function of the lock-table state
// (copying the table yields identical edges).
TEST_P(RandomizedProperties, EcrEdgesAreAFunctionOfState) {
  common::Rng rng(GetParam() ^ 0x777);
  for (int round = 0; round < 60; ++round) {
    LockManager lm;
    Randomize(lm, rng, 8, 3, 80);
    lock::LockTable copy = lm.table();
    EXPECT_EQ(core::BuildEcrEdges(lm.table(), true),
              core::BuildEcrEdges(copy, true));
  }
}

// Failure injection: abort random transactions at random moments (even
// blocked ones mid-queue), then verify no grantable request is stranded:
// forcing a reschedule on every resource grants nothing further.
TEST_P(RandomizedProperties, AbortInjectionStrandsNothing) {
  common::Rng rng(GetParam() ^ 0x31415);
  for (int round = 0; round < 80; ++round) {
    LockManager lm;
    for (int op = 0; op < 100; ++op) {
      lock::TransactionId tid =
          static_cast<lock::TransactionId>(rng.NextInRange(1, 9));
      if (rng.NextBernoulli(0.25)) {
        lm.ReleaseAll(tid);  // abort, possibly mid-wait
      } else {
        lock::ResourceId rid =
            static_cast<lock::ResourceId>(rng.NextInRange(1, 4));
        (void)lm.Acquire(tid, rid, lock::kRealModes[rng.NextBelow(5)]);
      }
      Status invariants = lm.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    }
    std::vector<lock::ResourceId> rids;
    for (const auto& [rid, state] : lm.table()) rids.push_back(rid);
    for (lock::ResourceId rid : rids) {
      ASSERT_TRUE(lm.Reschedule(rid).empty())
          << "stranded grantable request on R" << rid;
    }
  }
}

// Substrate fuzz: 10k random operations — new acquires, conversions
// (re-acquire on a touched resource), full releases, and wait
// cancellations — with the deep invariant sweep (I1-I5 per resource plus
// the manager's blocked_on/touched cross-checks) re-verified after every
// single mutation.  This is the workout for the flat-hash lock table and
// the inline holder/queue vectors: swap-erase on release, pooled
// re-creation, fast-path grants, and UPR repositioning all churn under
// one seed-reproducible schedule.
TEST_P(RandomizedProperties, FuzzTenThousandOpsKeepDeepInvariants) {
  common::Rng rng(GetParam() ^ 0xf022);
  LockManager lm;
  constexpr int kTxns = 12;
  constexpr int kResources = 6;
  for (int op = 0; op < 10000; ++op) {
    const lock::TransactionId tid =
        static_cast<lock::TransactionId>(rng.NextInRange(1, kTxns));
    if (rng.NextBernoulli(0.10)) {
      lm.ReleaseAll(tid);
    } else if (rng.NextBernoulli(0.10)) {
      (void)lm.CancelWait(tid);  // FailedPrecondition when runnable: fine
    } else {
      lock::ResourceId rid =
          static_cast<lock::ResourceId>(rng.NextInRange(1, kResources));
      const lock::TxnLockInfo* info = lm.Info(tid);
      if (info != nullptr && !info->touched.empty() &&
          rng.NextBernoulli(0.5)) {
        // Conversion pressure: re-request one of the resources the
        // transaction already appears on, usually in a different mode.
        rid = info->touched.begin()[rng.NextBelow(info->touched.size())];
      }
      (void)lm.Acquire(tid, rid, lock::kRealModes[rng.NextBelow(5)]);
    }
    Status invariants = lm.CheckInvariants(/*deep=*/true);
    ASSERT_TRUE(invariants.ok()) << invariants.ToString();
  }
}

// End-to-end drain: whatever state the system is in, repeatedly running
// detection and committing every runnable transaction terminates with an
// empty lock table (no transaction is ever stuck forever).
TEST_P(RandomizedProperties, SystemAlwaysDrains) {
  common::Rng rng(GetParam() ^ 0xdead);
  for (int round = 0; round < 50; ++round) {
    LockManager lm;
    Randomize(lm, rng, 10, 4, 90);
    core::CostTable costs;
    core::PeriodicDetector detector;
    int iterations = 0;
    while (!lm.table().empty()) {
      ASSERT_LT(++iterations, 100) << "system failed to drain";
      detector.RunPass(lm, costs);
      // Commit every runnable transaction.
      for (lock::TransactionId tid : lm.KnownTransactions()) {
        if (!lm.IsBlocked(tid)) lm.ReleaseAll(tid);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedProperties,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

}  // namespace
}  // namespace twbg
