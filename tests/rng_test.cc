// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/zipf.h"

namespace twbg::common {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(21);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, HighThetaConcentratesOnSmallIndices) {
  Rng rng(23);
  ZipfSampler zipf(100, 1.2);
  int low = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  EXPECT_GT(low, kSamples / 2);  // top 10% gets the majority of mass
}

TEST(ZipfTest, SingleElement) {
  Rng rng(29);
  ZipfSampler zipf(1, 0.99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace twbg::common
