// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests of the §5 complexity claims as checkable invariants:
//   * steps of a pass are O(n + e*(c'+1)) — verified with an explicit
//     constant against random and structured tables;
//   * c' (cycles actually searched) never exceeds n, nor the number of
//     elementary cycles c.

#include <gtest/gtest.h>

#include "bench/scenarios.h"
#include "common/rng.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "core/tst.h"
#include "lock/lock_manager.h"

namespace twbg {
namespace {

struct PassFacts {
  size_t n = 0;
  size_t e = 0;
  size_t elementary_cycles = 0;
  core::ResolutionReport report;
};

PassFacts RunPassWithFacts(lock::LockManager& lm) {
  PassFacts facts;
  core::Tst tst = core::Tst::Build(lm.table());
  facts.n = tst.size();
  facts.e = tst.NumEdges();
  facts.elementary_cycles =
      core::HwTwbg::Build(lm.table()).ElementaryCycles(100000).size();
  core::CostTable costs;
  core::PeriodicDetector detector;
  facts.report = detector.RunPass(lm, costs);
  return facts;
}

void CheckBounds(const PassFacts& facts, const char* what) {
  const size_t c_prime = facts.report.cycles_detected;
  // c' <= n and c' <= c (the paper's bound on cycles actually searched).
  EXPECT_LE(c_prime, facts.n) << what;
  EXPECT_LE(c_prime, facts.elementary_cycles) << what;
  // steps = O(n + e*(c'+1)); every loop iteration advances a cursor,
  // descends an edge, or backtracks a node, so 3x the bound is generous.
  const size_t bound = 3 * (facts.n + facts.e * (c_prime + 1)) + 3;
  EXPECT_LE(facts.report.steps, bound) << what;
}

TEST(ComplexityTest, AcyclicChainIsLinear) {
  for (size_t n : {10u, 100u, 1000u}) {
    lock::LockManager lm;
    bench::BuildChain(lm, n);
    PassFacts facts = RunPassWithFacts(lm);
    EXPECT_EQ(facts.report.cycles_detected, 0u);
    // No cycle: steps must be O(n + e) with no c' term at all.
    EXPECT_LE(facts.report.steps, 3 * (facts.n + facts.e));
    CheckBounds(facts, "chain");
  }
}

TEST(ComplexityTest, SingleRing) {
  for (size_t n : {2u, 8u, 64u, 512u}) {
    lock::LockManager lm;
    bench::BuildRing(lm, n);
    PassFacts facts = RunPassWithFacts(lm);
    EXPECT_EQ(facts.report.cycles_detected, 1u);
    EXPECT_EQ(facts.report.aborted.size(), 1u);
    CheckBounds(facts, "ring");
  }
}

TEST(ComplexityTest, ManyRingsSearchOneCycleEach) {
  lock::LockManager lm;
  bench::BuildRings(lm, 32, 6);
  PassFacts facts = RunPassWithFacts(lm);
  EXPECT_EQ(facts.report.cycles_detected, 32u);
  EXPECT_EQ(facts.report.aborted.size(), 32u);
  CheckBounds(facts, "rings");
}

TEST(ComplexityTest, UpgradeCrowdStaysPolynomialDespiteCycleExplosion) {
  for (size_t k : {4u, 6u, 8u, 10u}) {
    lock::LockManager lm;
    bench::BuildUpgradeCrowd(lm, k);
    PassFacts facts = RunPassWithFacts(lm);
    // c' is at most k-1 (one resolution frees the rest) while the
    // elementary cycle count explodes combinatorially.
    EXPECT_LE(facts.report.cycles_detected, k - 1) << k;
    if (k >= 8) {
      EXPECT_GT(facts.elementary_cycles, 1000u);
    }
    CheckBounds(facts, "crowd");
    // One holder survives with the X lock.
    const lock::ResourceState* state = lm.table().Find(1);
    ASSERT_NE(state, nullptr);
    ASSERT_EQ(state->holders().size(), 1u);
    EXPECT_EQ(state->holders()[0].granted, lock::LockMode::kX);
  }
}

TEST(ComplexityTest, QueueTailCostsNothingExtra) {
  lock::LockManager lm;
  bench::BuildQueueTail(lm, 500);
  PassFacts facts = RunPassWithFacts(lm);
  EXPECT_EQ(facts.report.cycles_detected, 0u);
  EXPECT_LE(facts.report.steps, 3 * (facts.n + facts.e));
}

TEST(ComplexityTest, RandomTablesRespectTheBound) {
  common::Rng rng(987654);
  for (int round = 0; round < 150; ++round) {
    lock::LockManager lm;
    const int txns = 2 + static_cast<int>(rng.NextBelow(14));
    const int resources = 1 + static_cast<int>(rng.NextBelow(5));
    const int ops = 20 + static_cast<int>(rng.NextBelow(120));
    for (int op = 0; op < ops; ++op) {
      (void)lm.Acquire(
          static_cast<lock::TransactionId>(rng.NextInRange(1, txns)),
          static_cast<lock::ResourceId>(rng.NextInRange(1, resources)),
          lock::kRealModes[rng.NextBelow(5)]);
    }
    PassFacts facts = RunPassWithFacts(lm);
    CheckBounds(facts, "random");
  }
}

}  // namespace
}  // namespace twbg
