// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the wait-die / wound-wait prevention baselines (the strategy
// family of the paper's reference [2]).

#include "baselines/prevention.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/oracle.h"
#include "sim/simulator.h"

namespace twbg::baselines {
namespace {

using enum lock::LockMode;

// Ages: smaller logical = older.
void Age(DetectionStrategy& strategy, lock::TransactionId tid,
         size_t logical) {
  strategy.OnSpawn(tid, logical);
}

TEST(WaitDieTest, OlderRequesterWaits) {
  lock::LockManager lm;
  core::CostTable costs;
  WaitDieStrategy wait_die;
  Age(wait_die, 1, 0);  // T1 is older
  Age(wait_die, 2, 1);
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kS).ok());  // older blocked by younger
  StrategyOutcome outcome = wait_die.OnBlock(lm, costs, 1);
  EXPECT_TRUE(outcome.aborted.empty());  // waiting is allowed
  EXPECT_TRUE(lm.IsBlocked(1));
}

TEST(WaitDieTest, YoungerRequesterDies) {
  lock::LockManager lm;
  core::CostTable costs;
  WaitDieStrategy wait_die;
  Age(wait_die, 1, 0);
  Age(wait_die, 2, 1);  // T2 is younger
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());  // younger blocked by older
  StrategyOutcome outcome = wait_die.OnBlock(lm, costs, 2);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{2}));
  EXPECT_EQ(lm.Info(2), nullptr);  // fully released
}

TEST(WaitDieTest, FifoWaitUsesQueuePredecessor) {
  lock::LockManager lm;
  core::CostTable costs;
  WaitDieStrategy wait_die;
  Age(wait_die, 1, 0);
  Age(wait_die, 2, 1);
  Age(wait_die, 3, 2);
  ASSERT_TRUE(lm.Acquire(1, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());  // queued behind the holder
  // T3's S is compatible with the holder — its wait is purely FIFO behind
  // T2, which is older, so T3 dies.
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  StrategyOutcome outcome = wait_die.OnBlock(lm, costs, 3);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{3}));
}

TEST(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  lock::LockManager lm;
  core::CostTable costs;
  WoundWaitStrategy wound_wait;
  Age(wound_wait, 1, 0);
  Age(wound_wait, 2, 1);
  ASSERT_TRUE(lm.Acquire(2, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kS).ok());  // older requester
  StrategyOutcome outcome = wound_wait.OnBlock(lm, costs, 1);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{2}));
  // The wound released the lock; the requester was granted in place.
  EXPECT_FALSE(lm.IsBlocked(1));
}

TEST(WoundWaitTest, YoungerRequesterWaits) {
  lock::LockManager lm;
  core::CostTable costs;
  WoundWaitStrategy wound_wait;
  Age(wound_wait, 1, 0);
  Age(wound_wait, 2, 1);
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  StrategyOutcome outcome = wound_wait.OnBlock(lm, costs, 2);
  EXPECT_TRUE(outcome.aborted.empty());
  EXPECT_TRUE(lm.IsBlocked(2));
}

TEST(WoundWaitTest, WoundsOnlyTheYoungerOfSeveralHolders) {
  lock::LockManager lm;
  core::CostTable costs;
  WoundWaitStrategy wound_wait;
  Age(wound_wait, 1, 5);  // requester, middle age
  Age(wound_wait, 2, 1);  // older holder — survives
  Age(wound_wait, 3, 9);  // younger holder — wounded
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(3, 1, kS).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());  // conflicts with both
  StrategyOutcome outcome = wound_wait.OnBlock(lm, costs, 1);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{3}));
  EXPECT_TRUE(lm.IsBlocked(1));  // still waits for the older T2
}

TEST(PreventionTest, ClassicCrossingRequestsNeverDeadlock) {
  for (std::string_view name : {"wait-die", "wound-wait"}) {
    lock::LockManager lm;
    core::CostTable costs;
    auto strategy = MakeStrategy(name);
    strategy->OnSpawn(1, 0);
    strategy->OnSpawn(2, 1);
    ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
    ASSERT_TRUE(lm.Acquire(2, 2, kX).ok());
    Result<lock::RequestOutcome> first = lm.Acquire(1, 2, kX);
    ASSERT_TRUE(first.ok());
    if (*first == lock::RequestOutcome::kBlocked) {
      strategy->OnBlock(lm, costs, 1);
    }
    if (lm.Info(2) != nullptr && !lm.IsBlocked(2)) {
      Result<lock::RequestOutcome> second = lm.Acquire(2, 1, kX);
      ASSERT_TRUE(second.ok());
      if (*second == lock::RequestOutcome::kBlocked) {
        strategy->OnBlock(lm, costs, 2);
      }
    }
    EXPECT_FALSE(core::AnalyzeByReduction(lm.table()).deadlocked) << name;
  }
}

TEST(PreventionTest, SimulatorRunsAreDeadlockFree) {
  // The defining property: prevention never needs the driver's stall
  // recovery because no wait cycle can form.  Conversion-free workload:
  // with conversions a rare reschedule-time edge can escape block-time
  // policing (documented in prevention.h).
  for (std::string_view name : {"wait-die", "wound-wait"}) {
    sim::SimConfig config;
    config.workload.seed = 8;
    config.workload.num_transactions = 150;
    config.workload.concurrency = 8;
    config.workload.num_resources = 24;
    config.workload.zipf_theta = 0.8;
    config.workload.conversion_prob = 0.0;
    config.workload.mode_weights = {0.25, 0.2, 0.35, 0.05, 0.15};
    config.detection_period = 0;  // purely on-block
    config.max_ticks = 1'000'000;
    sim::Simulator simulator(config, MakeStrategy(name));
    sim::SimMetrics metrics = simulator.Run();
    EXPECT_FALSE(metrics.timed_out) << name << ": " << metrics.ToString();
    EXPECT_EQ(metrics.committed, 150u) << name;
    EXPECT_EQ(metrics.missed_deadlocks, 0u) << name;  // deadlock-free
    EXPECT_GT(metrics.deadlock_aborts, 0u) << name;   // but abort-happy
  }
}

TEST(PreventionTest, UnknownTransactionsFallBackToTidOrder) {
  lock::LockManager lm;
  core::CostTable costs;
  WaitDieStrategy wait_die;  // no OnSpawn calls at all
  ASSERT_TRUE(lm.Acquire(1, 1, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, kS).ok());  // T2 younger by tid
  StrategyOutcome outcome = wait_die.OnBlock(lm, costs, 2);
  EXPECT_EQ(outcome.aborted, (std::vector<lock::TransactionId>{2}));
}

}  // namespace
}  // namespace twbg::baselines
