// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/tarjan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace twbg::graph {
namespace {

std::set<std::set<NodeId>> AsSets(
    const std::vector<std::vector<NodeId>>& components) {
  std::set<std::set<NodeId>> out;
  for (const auto& c : components) out.insert({c.begin(), c.end()});
  return out;
}

TEST(TarjanTest, SingletonComponents) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(StronglyConnectedComponents(g).size(), 3u);
  EXPECT_TRUE(CyclicComponents(g).empty());
}

TEST(TarjanTest, SimpleCycle) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto sccs = AsSets(StronglyConnectedComponents(g));
  EXPECT_TRUE(sccs.count({0, 1, 2}));
  EXPECT_TRUE(sccs.count({3}));
  auto cyclic = CyclicComponents(g);
  ASSERT_EQ(cyclic.size(), 1u);
  EXPECT_EQ(std::set<NodeId>(cyclic[0].begin(), cyclic[0].end()),
            (std::set<NodeId>{0, 1, 2}));
}

TEST(TarjanTest, SelfLoopIsCyclic) {
  Digraph g(2);
  g.AddEdge(0, 0);
  auto cyclic = CyclicComponents(g);
  ASSERT_EQ(cyclic.size(), 1u);
  EXPECT_EQ(cyclic[0], (std::vector<NodeId>{0}));
}

TEST(TarjanTest, TwoIndependentCycles) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  auto sccs = AsSets(StronglyConnectedComponents(g));
  EXPECT_TRUE(sccs.count({0, 1}));
  EXPECT_TRUE(sccs.count({3, 4, 5}));
  EXPECT_EQ(CyclicComponents(g).size(), 2u);
}

TEST(TarjanTest, NestedCyclesMergeIntoOneScc) {
  // 0->1->2->0 and 1->3->1 share vertex 1: one SCC {0,1,2,3}.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  g.AddEdge(3, 1);
  auto cyclic = CyclicComponents(g);
  ASSERT_EQ(cyclic.size(), 1u);
  EXPECT_EQ(cyclic[0].size(), 4u);
}

TEST(TarjanTest, ReverseTopologicalEmissionOrder) {
  // SCCs are emitted callees-first: for 0 -> 1, {1} precedes {0}.
  Digraph g(2);
  g.AddEdge(0, 1);
  auto sccs = StronglyConnectedComponents(g);
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0], (std::vector<NodeId>{1}));
  EXPECT_EQ(sccs[1], (std::vector<NodeId>{0}));
}

TEST(TarjanTest, ComponentsPartitionTheVertices) {
  common::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.NextBelow(20);
    Digraph g(n);
    const size_t edges = rng.NextBelow(3 * n);
    for (size_t i = 0; i < edges; ++i) {
      g.AddEdge(static_cast<NodeId>(rng.NextBelow(n)),
                static_cast<NodeId>(rng.NextBelow(n)));
    }
    auto sccs = StronglyConnectedComponents(g);
    std::set<NodeId> seen;
    size_t total = 0;
    for (const auto& c : sccs) {
      total += c.size();
      seen.insert(c.begin(), c.end());
    }
    EXPECT_EQ(total, n);
    EXPECT_EQ(seen.size(), n);
    // Cross-check cycle presence with Digraph::HasCycle.
    EXPECT_EQ(!CyclicComponents(g).empty(), g.HasCycle());
  }
}

}  // namespace
}  // namespace twbg::graph
