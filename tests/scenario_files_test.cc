// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Executes every checked-in scenario script (scenarios/*.twbg) through the
// ScriptRunner; the scripts carry their own `expect*` assertions, so this
// doubles as a golden-behaviour test of the whole stack.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/script.h"

#ifndef TWBG_SCENARIO_DIR
#error "TWBG_SCENARIO_DIR must be defined by the build"
#endif

namespace twbg::core {
namespace {

std::vector<std::filesystem::path> ScenarioFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TWBG_SCENARIO_DIR)) {
    if (entry.path().extension() == ".twbg") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class ScenarioFileTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(ScenarioFileTest, RunsCleanly) {
  std::ifstream file(GetParam());
  ASSERT_TRUE(file.good()) << GetParam();
  std::stringstream buffer;
  buffer << file.rdbuf();
  ScriptRunner runner;
  std::string out;
  Status status = runner.ExecuteScript(buffer.str(), &out);
  EXPECT_TRUE(status.ok()) << GetParam() << ": " << status.ToString()
                           << "\n--- output ---\n"
                           << out;
}

std::string NameOf(const ::testing::TestParamInfo<std::filesystem::path>& p) {
  std::string stem = p.param.stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioFileTest,
                         ::testing::ValuesIn(ScenarioFiles()), NameOf);

TEST(ScenarioDirTest, HasScenarios) {
  EXPECT_GE(ScenarioFiles().size(), 4u);
}

}  // namespace
}  // namespace twbg::core
