// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/mgl.h"

#include <gtest/gtest.h>

namespace twbg::txn {
namespace {

using enum lock::LockMode;

// db(1) -> area(10) -> file(100) -> records(1000, 1001)
ResourceHierarchy MakeHierarchy() {
  ResourceHierarchy h;
  EXPECT_TRUE(h.DeclareChild(1, 10).ok());
  EXPECT_TRUE(h.DeclareChild(10, 100).ok());
  EXPECT_TRUE(h.DeclareChild(100, 1000).ok());
  EXPECT_TRUE(h.DeclareChild(100, 1001).ok());
  return h;
}

TEST(ResourceHierarchyTest, PathFromRoot) {
  ResourceHierarchy h = MakeHierarchy();
  EXPECT_EQ(h.PathFromRoot(1000),
            (std::vector<lock::ResourceId>{1, 10, 100, 1000}));
  EXPECT_EQ(h.PathFromRoot(1), (std::vector<lock::ResourceId>{1}));
  // Unknown resources are their own root.
  EXPECT_EQ(h.PathFromRoot(777), (std::vector<lock::ResourceId>{777}));
}

TEST(ResourceHierarchyTest, RejectsBadEdges) {
  ResourceHierarchy h = MakeHierarchy();
  EXPECT_TRUE(h.DeclareChild(5, 5).IsInvalidArgument());
  EXPECT_TRUE(h.DeclareChild(2, 10).IsFailedPrecondition());
  EXPECT_TRUE(h.DeclareChild(1000, 1).IsInvalidArgument());  // cycle
}

TEST(MglTest, IntentionModes) {
  EXPECT_EQ(IntentionFor(kIS), kIS);
  EXPECT_EQ(IntentionFor(kS), kIS);
  EXPECT_EQ(IntentionFor(kIX), kIX);
  EXPECT_EQ(IntentionFor(kSIX), kIX);
  EXPECT_EQ(IntentionFor(kX), kIX);
}

TEST(MglTest, LeafLockTakesIntentionPath) {
  ResourceHierarchy h = MakeHierarchy();
  TransactionManager tm;
  MglAcquirer mgl(&h, &tm);
  lock::TransactionId t = *tm.Begin();
  ASSERT_TRUE(mgl.Lock(t, 1000, kX).ok());
  // IX on db, area, file; X on the record.
  const lock::LockTable& table = tm.lock_manager().table();
  EXPECT_EQ(table.Find(1)->FindHolder(t)->granted, kIX);
  EXPECT_EQ(table.Find(10)->FindHolder(t)->granted, kIX);
  EXPECT_EQ(table.Find(100)->FindHolder(t)->granted, kIX);
  EXPECT_EQ(table.Find(1000)->FindHolder(t)->granted, kX);
}

TEST(MglTest, ConcurrentRecordLocksShareIntentions) {
  ResourceHierarchy h = MakeHierarchy();
  TransactionManager tm;
  MglAcquirer mgl(&h, &tm);
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  EXPECT_TRUE(mgl.Lock(a, 1000, kX).ok());
  // Different record: intentions are compatible, both proceed.
  EXPECT_TRUE(mgl.Lock(b, 1001, kX).ok());
  // Same record conflicts at the leaf only.
  lock::TransactionId c = *tm.Begin();
  EXPECT_TRUE(mgl.Lock(c, 1000, kS).IsWouldBlock());
  EXPECT_EQ(*tm.State(c), TxnState::kBlocked);
}

TEST(MglTest, CoarseLockBlocksFineLock) {
  ResourceHierarchy h = MakeHierarchy();
  TransactionManager tm;
  MglAcquirer mgl(&h, &tm);
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  // S on the whole file blocks an X on a record (IX vs S at the file).
  EXPECT_TRUE(mgl.Lock(a, 100, kS).ok());
  EXPECT_TRUE(mgl.Lock(b, 1000, kX).IsWouldBlock());
  EXPECT_TRUE(mgl.HasPendingPlan(b));
  // When a commits, b's plan resumes and completes.
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_EQ(*tm.State(b), TxnState::kActive);
  EXPECT_TRUE(mgl.Advance(b).ok());
  EXPECT_FALSE(mgl.HasPendingPlan(b));
  EXPECT_EQ(tm.lock_manager().table().Find(1000)->FindHolder(b)->granted, kX);
}

TEST(MglTest, SuspendedPlanBlocksNewPlans) {
  ResourceHierarchy h = MakeHierarchy();
  TransactionManager tm;
  MglAcquirer mgl(&h, &tm);
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  EXPECT_TRUE(mgl.Lock(a, 100, kX).ok());
  EXPECT_TRUE(mgl.Lock(b, 1000, kS).IsWouldBlock());
  EXPECT_TRUE(mgl.Lock(b, 1001, kS).IsFailedPrecondition());
  EXPECT_TRUE(mgl.Advance(a).IsNotFound());
  mgl.CancelPlan(b);
  EXPECT_FALSE(mgl.HasPendingPlan(b));
}

TEST(MglTest, HierarchicalDeadlockIsDetected) {
  // Two transactions lock sibling records then try to upgrade across:
  // a classic MGL deadlock resolved by the detector.
  ResourceHierarchy h = MakeHierarchy();
  TransactionManagerOptions options;
  options.detection_mode = DetectionMode::kContinuous;
  TransactionManager tm(options);
  MglAcquirer mgl(&h, &tm);
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  EXPECT_TRUE(mgl.Lock(a, 1000, kX).ok());
  EXPECT_TRUE(mgl.Lock(b, 1001, kX).ok());
  EXPECT_TRUE(mgl.Lock(a, 1001, kS).IsWouldBlock());
  Status closing = mgl.Lock(b, 1000, kS);
  ASSERT_TRUE(closing.ok() || closing.IsWouldBlock() ||
              closing.IsDeadlockVictim())
      << closing.ToString();
  // Continuous detection resolved the cycle at block time: either b died,
  // or another victim freed it.
  const bool a_dead = *tm.State(a) == TxnState::kAborted;
  const bool b_dead = *tm.State(b) == TxnState::kAborted;
  EXPECT_TRUE(a_dead || b_dead);
  EXPECT_FALSE(a_dead && b_dead);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

}  // namespace
}  // namespace twbg::txn
