// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Pauseless (kEpochDelta) periodic detection: report parity against the
// stop-the-world strategy and the sequential manager on a quiesced
// table, deterministic stale-command injection through the seal-to-apply
// window (post_seal_hook), and fault-injected chaos with a live detector
// thread.  The stale-command tests pin the paper's safety story: a
// rejected command is re-resolved within one extra pass, a command whose
// cycle dissolved in the window never produces a phantom victim, and no
// transaction is ever double-victimized.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bus.h"
#include "obs/sinks.h"
#include "obs/span.h"
#include "obs/span_sinks.h"
#include "txn/concurrent_service.h"
#include "txn/epoch_snapshot.h"
#include "txn/robustness/robustness.h"
#include "txn/transaction_manager.h"

namespace twbg::txn {
namespace {

using enum lock::LockMode;

// Graph-cache hit counts depend on how a table was populated (live
// journals vs. folded mirrors), so cross-engine report comparisons strip
// the cache line; everything else must match byte-for-byte.
std::string StripCacheLines(const std::string& s) {
  std::istringstream in(s);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("graph-cache:") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void WaitUntilBlocked(ConcurrentLockService& service,
                      lock::TransactionId tid) {
  while (*service.State(tid) != TxnState::kBlocked) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Builds two disjoint deadlocks with deterministic tids and block order —
// a 2-cycle (T1 <-> T2 over R1/R2) and a 3-cycle (T3 -> T4 -> T5 -> T3
// over R3/R4/R5) — runs one pass, lets every thread finish, and returns
// the report.  Exactly two victims (one per cycle); the survivors cascade
// to commit once their grants arrive.
void BuildCyclesAndRunPass(ConcurrentLockService& s,
                           core::ResolutionReport* report,
                           int* victims_out) {
  const lock::TransactionId t1 = *s.Begin();
  const lock::TransactionId t2 = *s.Begin();
  const lock::TransactionId t3 = *s.Begin();
  const lock::TransactionId t4 = *s.Begin();
  const lock::TransactionId t5 = *s.Begin();
  ASSERT_TRUE(s.AcquireBlocking(t1, 1, kX).ok());
  ASSERT_TRUE(s.AcquireBlocking(t2, 2, kX).ok());
  ASSERT_TRUE(s.AcquireBlocking(t3, 3, kX).ok());
  ASSERT_TRUE(s.AcquireBlocking(t4, 4, kX).ok());
  ASSERT_TRUE(s.AcquireBlocking(t5, 5, kX).ok());

  std::atomic<int> victims{0};
  auto block = [&s, &victims](lock::TransactionId t, lock::ResourceId rid) {
    Status status = s.AcquireBlocking(t, rid, kX);
    if (status.IsAborted()) {
      ++victims;
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(s.Commit(t).ok());
  };
  std::vector<std::thread> threads;
  auto spawn = [&](lock::TransactionId t, lock::ResourceId rid) {
    threads.emplace_back(block, t, rid);
    WaitUntilBlocked(s, t);
  };
  spawn(t1, 2);
  spawn(t2, 1);
  spawn(t3, 4);
  spawn(t4, 5);
  spawn(t5, 3);

  *report = s.RunDetectionPass();
  for (std::thread& thread : threads) thread.join();
  *victims_out = victims.load();
}

ConcurrentServiceOptions QuiescedOptions(SnapshotStrategy strategy) {
  ConcurrentServiceOptions options;
  options.num_shards = 4;
  options.detection_mode = DetectionMode::kPeriodic;
  options.snapshot_strategy = strategy;
  options.cost_policy = CostPolicy::kLocksHeld;
  return options;
}

// The acceptance bar for the pauseless rewrite: on a quiesced table the
// epoch-snapshot pass and the stop-the-world pass produce byte-identical
// resolution reports, and both match the sequential manager running the
// same schedule.
TEST(PauselessServiceTest, QuiescedReportParityAcrossEngines) {
  core::ResolutionReport pauseless_report;
  int pauseless_victims = 0;
  {
    auto service =
        ConcurrentLockService::Create(QuiescedOptions(SnapshotStrategy::kEpochDelta));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    BuildCyclesAndRunPass(**service, &pauseless_report, &pauseless_victims);
    EXPECT_EQ((*service)->publish_pause_times_ns().size(),
              (*service)->num_shards());
    EXPECT_EQ((*service)->detection_lag_ns().size(), 1u);
    EXPECT_TRUE((*service)->sweep_pause_times_ns().empty());
    EXPECT_EQ((*service)->pause_times_ns().size(), 1u);
    EXPECT_EQ((*service)->resolutions_rejected(), 0u);
  }

  core::ResolutionReport stw_report;
  int stw_victims = 0;
  {
    auto service = ConcurrentLockService::Create(
        QuiescedOptions(SnapshotStrategy::kStopTheWorld));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    BuildCyclesAndRunPass(**service, &stw_report, &stw_victims);
    EXPECT_TRUE((*service)->publish_pause_times_ns().empty());
    EXPECT_TRUE((*service)->detection_lag_ns().empty());
  }

  // The same schedule on the sequential manager (blocked acquires return
  // kWouldBlock instead of parking a thread).
  TransactionManagerOptions seq_options;
  seq_options.detection_mode = DetectionMode::kPeriodic;
  seq_options.cost_policy = CostPolicy::kLocksHeld;
  TransactionManager tm(seq_options);
  std::vector<lock::TransactionId> tids;
  for (int i = 0; i < 5; ++i) tids.push_back(*tm.Begin());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        tm.Acquire(tids[i], static_cast<lock::ResourceId>(i + 1), kX).ok());
  }
  ASSERT_TRUE(tm.Acquire(tids[0], 2, kX).IsWouldBlock());
  ASSERT_TRUE(tm.Acquire(tids[1], 1, kX).IsWouldBlock());
  ASSERT_TRUE(tm.Acquire(tids[2], 4, kX).IsWouldBlock());
  ASSERT_TRUE(tm.Acquire(tids[3], 5, kX).IsWouldBlock());
  ASSERT_TRUE(tm.Acquire(tids[4], 3, kX).IsWouldBlock());
  core::ResolutionReport seq_report = tm.RunDetection();

  EXPECT_EQ(pauseless_victims, 2);
  EXPECT_EQ(stw_victims, 2);
  EXPECT_EQ(pauseless_report.rejected, 0u);
  EXPECT_EQ(pauseless_report.ToString(), stw_report.ToString());
  EXPECT_EQ(StripCacheLines(pauseless_report.ToString()),
            StripCacheLines(seq_report.ToString()));
}

// A bystander queued on a cycle resource aborts inside the seal-to-apply
// window.  The cycle itself survives, but the evidence stamp on the
// shared resource moved, so the pass must drop its command (no victim,
// no partial apply) and the very next pass must resolve the same cycle —
// with exactly one victim in total across both passes.
// A walk-phase TDR-2 mutates the MIRROR before its validated apply runs;
// if the apply then rejects the decision, the live shard never changes,
// so the live journal will never re-dirty that resource.  Capture must
// re-stage everything the mirror's own journal recorded since the last
// fold, or the mirror diverges from a quiesced live shard forever and
// every later pass re-derives (and re-rejects) resolutions from corrupt
// state — the exact wedge bench_throughput's stall watchdog caught on
// the shards=8 high-contention cell.
TEST(ShardSnapshotTest, DetectPhaseMirrorMutationsAreRestagedFromLive) {
  lock::LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 7, kX).ok());
  ASSERT_TRUE(lm.Acquire(2, 7, kX).ok());  // queues behind T1
  ShardSnapshot snapshot;
  (void)snapshot.Capture(lm);
  snapshot.Fold();
  const uint64_t live_version = lm.table().Find(7)->version();
  ASSERT_EQ(snapshot.table().Find(7)->version(), live_version);

  // Simulate the walk mutating the mirror (journaled, as NoteTdr2Applied
  // does) for a decision the validated apply will reject: the mirror
  // moves, the live table does not.
  snapshot.mutable_table().FindMutable(7)->Remove(2);
  ASSERT_NE(snapshot.table().Find(7)->version(), live_version);

  ShardCaptureStats stats = snapshot.Capture(lm);
  EXPECT_EQ(stats.dirty, 1u);
  EXPECT_FALSE(stats.full_sweep);
  snapshot.Fold();
  EXPECT_EQ(snapshot.table().Find(7)->version(), live_version);
  EXPECT_EQ(snapshot.table().Find(7)->ToString(),
            lm.table().Find(7)->ToString());
}

TEST(PauselessServiceTest, StaleCommandIsRetriedByTheNextPass) {
  ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = DetectionMode::kPeriodic;
  ConcurrentLockService* raw = nullptr;
  lock::TransactionId bystander = 0;
  std::atomic<int> hook_fires{0};
  options.post_seal_hook = [&] {
    if (hook_fires.fetch_add(1) == 0) {
      EXPECT_TRUE(raw->Abort(bystander).ok());
    }
  };
  auto service = ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  raw = service->get();

  const lock::TransactionId t1 = *raw->Begin();
  const lock::TransactionId t2 = *raw->Begin();
  bystander = *raw->Begin();
  ASSERT_TRUE(raw->AcquireBlocking(t1, 1, kX).ok());
  ASSERT_TRUE(raw->AcquireBlocking(t2, 2, kX).ok());

  std::atomic<int> cycle_aborts{0};
  std::atomic<int> bystander_aborts{0};
  auto block = [&](lock::TransactionId t, lock::ResourceId rid,
                   std::atomic<int>* aborts) {
    Status status = raw->AcquireBlocking(t, rid, kX);
    if (status.IsAborted()) {
      ++*aborts;
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(raw->Commit(t).ok());
  };
  std::thread a(block, t1, 2, &cycle_aborts);
  WaitUntilBlocked(*raw, t1);
  std::thread b(block, t2, 1, &cycle_aborts);
  WaitUntilBlocked(*raw, t2);
  std::thread c(block, bystander, 1, &bystander_aborts);
  WaitUntilBlocked(*raw, bystander);

  core::ResolutionReport first = raw->RunDetectionPass();
  EXPECT_EQ(first.cycles_detected, 1u);
  EXPECT_EQ(first.rejected, 1u);
  EXPECT_TRUE(first.aborted.empty());
  EXPECT_TRUE(first.decisions.empty());
  EXPECT_NE(first.ToString().find("rejected: 1 stale"), std::string::npos);
  EXPECT_EQ(raw->deadlock_victims(), 0u);  // no phantom victim

  core::ResolutionReport second = raw->RunDetectionPass();
  EXPECT_EQ(second.rejected, 0u);
  EXPECT_EQ(second.aborted.size(), 1u);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(cycle_aborts.load(), 1);  // no double victim
  EXPECT_EQ(bystander_aborts.load(), 1);
  EXPECT_EQ(raw->deadlock_victims(), 1u);
  EXPECT_EQ(raw->resolutions_rejected(), 1u);
  EXPECT_EQ(raw->pause_times_ns().size(), 2u);
  EXPECT_EQ(raw->publish_pause_times_ns().size(), 2 * raw->num_shards());
  EXPECT_EQ(raw->detection_lag_ns().size(), 2u);
}

// A cycle *member* aborts inside the window: the deadlock dissolves
// before the command lands, so the stale command must be dropped and no
// later pass may ever produce a victim for it.
TEST(PauselessServiceTest, DissolvedCycleNeverYieldsAVictim) {
  ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = DetectionMode::kPeriodic;
  ConcurrentLockService* raw = nullptr;
  lock::TransactionId member = 0;
  std::atomic<int> hook_fires{0};
  options.post_seal_hook = [&] {
    if (hook_fires.fetch_add(1) == 0) {
      EXPECT_TRUE(raw->Abort(member).ok());
    }
  };
  auto service = ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  raw = service->get();

  const lock::TransactionId t1 = *raw->Begin();
  member = *raw->Begin();
  ASSERT_TRUE(raw->AcquireBlocking(t1, 1, kX).ok());
  ASSERT_TRUE(raw->AcquireBlocking(member, 2, kX).ok());

  std::atomic<int> survivor_commits{0};
  std::thread a([&] {
    // T1's wait outlives the cycle: the member's abort grants R2.
    Status status = raw->AcquireBlocking(t1, 2, kX);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(raw->Commit(t1).ok());
    ++survivor_commits;
  });
  WaitUntilBlocked(*raw, t1);
  std::thread b([&] {
    Status status = raw->AcquireBlocking(member, 1, kX);
    EXPECT_TRUE(status.IsAborted()) << status.ToString();
  });
  WaitUntilBlocked(*raw, member);

  core::ResolutionReport first = raw->RunDetectionPass();
  EXPECT_EQ(first.cycles_detected, 1u);
  EXPECT_EQ(first.rejected, 1u);
  EXPECT_TRUE(first.aborted.empty());
  a.join();
  b.join();
  core::ResolutionReport second = raw->RunDetectionPass();
  EXPECT_EQ(second.cycles_detected, 0u);
  EXPECT_TRUE(second.aborted.empty());
  EXPECT_EQ(raw->deadlock_victims(), 0u);
  EXPECT_EQ(raw->resolutions_rejected(), 1u);
  EXPECT_EQ(survivor_commits.load(), 1);
}

// Chaos: a fault-injected workload (delayed grants, dropped wakeups,
// crashes, shard stalls) races a continuously re-running pauseless
// detector.  Liveness (every thread finishes, no lost wakeup), a clean
// invariant sweep, and exact per-pass accounting of the new series.
TEST(PauselessServiceTest, FaultInjectedChurnStaysInvariantClean) {
  ConcurrentServiceOptions options;
  options.num_shards = 8;
  options.detection_mode = DetectionMode::kPeriodic;
  options.cost_policy = CostPolicy::kLocksHeld;
  robustness::FaultPlanOptions fault_options;
  fault_options.num_faults = 12;
  fault_options.max_at = 60;
  fault_options.max_txn = 60;
  fault_options.max_shard = 8;
  fault_options.max_duration = 100;  // microseconds in the threaded host
  Result<robustness::FaultPlan> plan =
      robustness::FaultPlan::Random(20260807, fault_options);
  ASSERT_TRUE(plan.ok());
  options.fault_plan = *plan;
  auto service = ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ConcurrentLockService& s = **service;

  std::atomic<bool> stop{false};
  std::thread detector([&] {
    while (!stop.load()) {
      (void)s.RunDetectionPass();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kWorkers = 4;
  std::atomic<int> committed{0};
  {
    std::vector<std::thread> workers;
    for (int worker = 0; worker < kWorkers; ++worker) {
      workers.emplace_back([&, worker] {
        for (int i = 0; i < 20; ++i) {
          for (;;) {
            const lock::TransactionId t = *s.Begin();
            bool dead = false;
            for (int k = 0; k < 3 && !dead; ++k) {
              const lock::ResourceId rid =
                  static_cast<lock::ResourceId>(1 + (worker + k * i) % 7);
              Status status =
                  s.AcquireBlocking(t, rid, k == 2 ? kX : kS);
              if (status.IsAborted()) dead = true;
            }
            if (dead) continue;  // victim or crash fault: retry fresh
            ASSERT_TRUE(s.Commit(t).ok());
            ++committed;
            break;
          }
        }
      });
    }
    for (std::thread& thread : workers) thread.join();
  }
  stop.store(true);
  detector.join();

  EXPECT_EQ(committed.load(), kWorkers * 20);
  EXPECT_TRUE(s.CheckInvariants(/*deep=*/true).ok());
  const uint64_t epochs = s.snapshot_epoch();
  EXPECT_GE(epochs, 1u);
  // Every pass was pauseless: one client-visible pause and one lag per
  // pass, one publish pause per shard per pass, and no degraded sweeps.
  EXPECT_EQ(s.pause_times_ns().size(), epochs);
  EXPECT_EQ(s.publish_pause_times_ns().size(), epochs * s.num_shards());
  EXPECT_EQ(s.detection_lag_ns().size(), epochs);
  EXPECT_TRUE(s.sweep_pause_times_ns().empty());
}

// The causal span tree of one pauseless pass: the pass span parents one
// publish span per shard, the stamp-validated apply, and one resolution
// span per validated decision — and every replayed kCyclePostMortem
// event carries its resolution span's id (the forensic <-> timeline
// join).  Client-side, all five transactions get txn + wait spans with
// exactly the two victims marked aborted.
TEST(PauselessServiceTest, SpanTreeCoversTheWholePauselessPass) {
  obs::SpanTracer tracer;
  obs::SpanCollectorSink spans;
  tracer.Subscribe(&spans);
  obs::EventBus bus;
  obs::CollectorSink events;
  bus.Subscribe(&events);
  ConcurrentServiceOptions options =
      QuiescedOptions(SnapshotStrategy::kEpochDelta);
  options.event_bus = &bus;
  options.span_tracer = &tracer;
  core::ResolutionReport report;
  int victims = 0;
  {
    auto service = ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    BuildCyclesAndRunPass(**service, &report, &victims);
  }
  EXPECT_EQ(victims, 2);

  const std::vector<obs::Span> passes = spans.Filter(obs::SpanKind::kPass);
  ASSERT_EQ(passes.size(), 1u);
  EXPECT_EQ(passes[0].a, 2u);  // cycles resolved (none rejected)
  EXPECT_GT(passes[0].b, 0u);  // pass cost in nanoseconds
  const uint64_t pass_id = passes[0].id;

  const std::vector<obs::Span> publishes =
      spans.Filter(obs::SpanKind::kPublish);
  ASSERT_EQ(publishes.size(), 4u);  // one per shard
  std::set<uint32_t> tracks;
  for (const obs::Span& publish : publishes) {
    EXPECT_EQ(publish.parent, pass_id);
    tracks.insert(publish.track);
  }
  EXPECT_EQ(tracks.size(), 4u);  // distinct shard lanes

  const std::vector<obs::Span> applies = spans.Filter(obs::SpanKind::kApply);
  ASSERT_EQ(applies.size(), 1u);
  EXPECT_EQ(applies[0].parent, pass_id);
  EXPECT_EQ(applies[0].a, 2u);  // decisions applied
  EXPECT_EQ(applies[0].b, 0u);  // none rejected as stale

  const std::vector<obs::Span> resolutions =
      spans.Filter(obs::SpanKind::kResolution);
  ASSERT_EQ(resolutions.size(), 2u);
  std::set<uint64_t> res_ids;
  for (const obs::Span& res : resolutions) {
    EXPECT_EQ(res.parent, pass_id);
    EXPECT_TRUE(res.label == "TDR-1" || res.label == "TDR-2") << res.label;
    EXPECT_GE(res.a, 2u);  // cycle length (the 2-cycle and the 3-cycle)
    EXPECT_NE(res.tid, 0u);
    res_ids.insert(res.id);
  }

  const std::vector<obs::Event> post_mortems =
      events.Filter(obs::EventKind::kCyclePostMortem);
  ASSERT_EQ(post_mortems.size(), 2u);
  for (const obs::Event& pm : post_mortems) {
    EXPECT_EQ(res_ids.count(pm.span), 1u) << pm.span;
  }

  const std::vector<obs::Span> txns = spans.Filter(obs::SpanKind::kTxn);
  ASSERT_EQ(txns.size(), 5u);
  size_t txn_aborts = 0;
  for (const obs::Span& txn : txns) {
    EXPECT_EQ(txn.label, "client");
    txn_aborts += txn.aborted ? 1 : 0;
  }
  EXPECT_EQ(txn_aborts, 2u);

  const std::vector<obs::Span> waits = spans.Filter(obs::SpanKind::kWait);
  ASSERT_EQ(waits.size(), 5u);  // every transaction blocked exactly once
  size_t wait_aborts = 0;
  for (const obs::Span& wait : waits) {
    EXPECT_GT(wait.corr, 0u);  // joins against the event stream
    wait_aborts += wait.aborted ? 1 : 0;
  }
  EXPECT_EQ(wait_aborts, 2u);  // the victims; survivors were granted
  EXPECT_EQ(tracer.open_count(), 0u);  // nothing leaked
}

// The stop-the-world engine emits the pass span itself (its pool workers
// run tracer-less), with the same client-side txn/wait coverage.
TEST(PauselessServiceTest, StopTheWorldPassEmitsPassSpan) {
  obs::SpanTracer tracer;
  obs::SpanCollectorSink spans;
  tracer.Subscribe(&spans);
  ConcurrentServiceOptions options =
      QuiescedOptions(SnapshotStrategy::kStopTheWorld);
  options.span_tracer = &tracer;
  core::ResolutionReport report;
  int victims = 0;
  {
    auto service = ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    BuildCyclesAndRunPass(**service, &report, &victims);
  }
  EXPECT_EQ(victims, 2);
  const std::vector<obs::Span> passes = spans.Filter(obs::SpanKind::kPass);
  ASSERT_EQ(passes.size(), 1u);
  EXPECT_EQ(passes[0].a, 2u);
  EXPECT_GT(passes[0].b, 0u);  // the client-visible pause in nanoseconds
  EXPECT_TRUE(spans.Filter(obs::SpanKind::kPublish).empty());
  EXPECT_EQ(spans.Count(obs::SpanKind::kTxn), 5u);
  EXPECT_EQ(spans.Count(obs::SpanKind::kWait), 5u);
  EXPECT_EQ(tracer.open_count(), 0u);
}

}  // namespace
}  // namespace twbg::txn
