// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Randomized N-thread stress suite for the sharded periodic
// ConcurrentLockService, with a replay oracle: because every lock-state
// mutation and its event emission happen atomically under the service's
// locks, the recorded event stream is a true linearization of the run.
// Replaying that stream op-by-op against the single-threaded
// TransactionManager must therefore reproduce the exact same grants,
// blocks, wakeups, deadlock victims and post-mortem counts — any
// divergence means the sharded engine tore an operation or the pass saw
// an inconsistent snapshot.
//
// Span and timing fields are excluded from the comparison: wait-span ids
// are per-shard domains in the sharded service (documented in
// concurrent_service.h), and pass durations are wall-clock.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <deque>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/bus.h"
#include "obs/sinks.h"
#include "txn/concurrent_service.h"

namespace twbg::txn {
namespace {

using enum lock::LockMode;

struct WorkloadConfig {
  size_t num_shards = 8;
  int workers = 4;
  int txns_per_worker = 40;
  int max_ops = 5;
  int resources = 40;
  uint64_t seed = 1;
};

// Zipf-skewed resource pick: squaring a uniform sample concentrates mass
// on low rids (the hot set) while the tail keeps shards busy.
lock::ResourceId PickResource(common::Rng& rng, int resources) {
  const double u = rng.NextDouble();
  return static_cast<lock::ResourceId>(1 + static_cast<int>(u * u * resources));
}

// One worker: run `txns_per_worker` transactions of 1..max_ops skewed
// acquires each, committing survivors (with occasional voluntary aborts).
void RunWorker(ConcurrentLockService& service, const WorkloadConfig& config,
               int worker, std::atomic<size_t>& committed) {
  common::Rng rng(config.seed * 7919 + static_cast<uint64_t>(worker));
  for (int i = 0; i < config.txns_per_worker; ++i) {
    const lock::TransactionId t = *service.Begin();
    bool dead = false;
    const int ops = 1 + static_cast<int>(rng.NextBelow(config.max_ops));
    for (int k = 0; k < ops && !dead; ++k) {
      const lock::ResourceId rid = PickResource(rng, config.resources);
      const lock::LockMode mode = lock::kRealModes[rng.NextBelow(5)];
      Status status = service.AcquireBlocking(t, rid, mode);
      if (status.IsAborted()) dead = true;
      // Other errors (conversion-policy rejections) skip the op, exactly
      // as they leave no trace in the recorded stream.
    }
    if (dead) continue;  // victim: already aborted, locks gone
    if (rng.NextBernoulli(0.05)) {
      EXPECT_TRUE(service.Abort(t).ok());
      continue;
    }
    // A transaction that returned from its last acquire is kActive, and
    // only blocked transactions can be chosen as victims — commit cannot
    // lose that race.
    Status status = service.Commit(t);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (status.ok()) ++committed;
  }
}

bool ComparedKind(obs::EventKind kind) {
  switch (kind) {
    case obs::EventKind::kTxnBegin:
    case obs::EventKind::kTxnCommit:
    case obs::EventKind::kTxnAbort:
    case obs::EventKind::kLockGrant:
    case obs::EventKind::kLockBlock:
    case obs::EventKind::kLockConvert:
    case obs::EventKind::kLockRelease:
    case obs::EventKind::kLockWakeup:
    case obs::EventKind::kUprReposition:
    case obs::EventKind::kPassStart:
    case obs::EventKind::kStep1:
    case obs::EventKind::kStep2:
    case obs::EventKind::kPassEnd:
    case obs::EventKind::kCycleResolved:
    case obs::EventKind::kCyclePostMortem:
      return true;
    default:  // kShardContention has no sequential counterpart; timing
              // and watchdog kinds are not emitted by either engine here
      return false;
  }
}

std::vector<obs::Event> Filtered(const std::deque<obs::Event>& events) {
  std::vector<obs::Event> out;
  for (const obs::Event& e : events) {
    if (ComparedKind(e.kind)) out.push_back(e);
  }
  return out;
}

// Replays the recorded linearization against a sequential
// TransactionManager, asserting every op resolves identically, and
// returns the replay's own event recording for stream comparison.
void ReplayAndCompare(const std::deque<obs::Event>& recorded,
                      size_t expected_commits) {
  obs::EventBus replay_bus;
  obs::CollectorSink replay_sink;
  replay_bus.Subscribe(&replay_sink);
  TransactionManagerOptions options;
  options.detection_mode = DetectionMode::kPeriodic;
  options.cost_policy = CostPolicy::kLocksHeld;
  options.event_bus = &replay_bus;
  TransactionManager tm(options);

  size_t commits = 0;
  for (size_t i = 0; i < recorded.size(); ++i) {
    const obs::Event& e = recorded[i];
    switch (e.kind) {
      case obs::EventKind::kTxnBegin:
        ASSERT_EQ(*tm.Begin(), e.tid) << "event " << i;
        break;
      case obs::EventKind::kLockGrant:
      case obs::EventKind::kLockBlock:
      case obs::EventKind::kLockConvert: {
        Status r = tm.Acquire(e.tid, e.rid, e.mode);
        const bool granted = e.kind == obs::EventKind::kLockGrant ||
                             (e.kind == obs::EventKind::kLockConvert &&
                              e.a == 1);
        ASSERT_TRUE(granted ? r.ok() : r.IsWouldBlock())
            << "event " << i << ": " << r.ToString();
        break;
      }
      case obs::EventKind::kTxnCommit: {
        Status status = tm.Commit(e.tid);
        ASSERT_TRUE(status.ok()) << "event " << i << ": " << status.ToString();
        ++commits;
        break;
      }
      case obs::EventKind::kTxnAbort:
        // a == 1 victims are produced by the replayed detection passes
        // themselves; only voluntary aborts are replayed as ops.
        if (e.a == 0) {
          Status status = tm.Abort(e.tid);
          ASSERT_TRUE(status.ok())
              << "event " << i << ": " << status.ToString();
        }
        break;
      case obs::EventKind::kPassStart:
        if (e.a == 1) tm.RunDetection();
        break;
      default:
        break;  // emitted by the replay itself (wakeups, releases, ...)
    }
  }
  ASSERT_EQ(commits, expected_commits);

  // The replay must have emitted the recorded stream back, byte-for-byte
  // on every field that is defined to be comparable.
  const std::vector<obs::Event> want = Filtered(recorded);
  const std::vector<obs::Event> got = Filtered(replay_sink.events());
  ASSERT_EQ(want.size(), got.size());
  size_t victims = 0;
  size_t post_mortems = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    const obs::Event& w = want[i];
    const obs::Event& g = got[i];
    ASSERT_EQ(w.kind, g.kind) << "event " << i;
    ASSERT_EQ(w.tid, g.tid) << "event " << i;
    ASSERT_EQ(w.rid, g.rid) << "event " << i;
    ASSERT_EQ(w.mode, g.mode) << "event " << i;
    ASSERT_EQ(w.a, g.a) << "event " << i;
    ASSERT_EQ(w.b, g.b) << "event " << i;
    if (w.kind == obs::EventKind::kCycleResolved ||
        w.kind == obs::EventKind::kCyclePostMortem) {
      ASSERT_EQ(w.value, g.value) << "event " << i;  // the victim's cost
    }
    if (w.kind == obs::EventKind::kTxnAbort && w.a == 1) ++victims;
    if (w.kind == obs::EventKind::kCyclePostMortem) ++post_mortems;
  }
  // Redundant with the loop above but the headline properties deserve
  // their own assertion: identical victim count and post-mortem count.
  size_t replay_victims = 0;
  for (const obs::Event& e : replay_sink.events()) {
    if (e.kind == obs::EventKind::kTxnAbort && e.a == 1) ++replay_victims;
  }
  EXPECT_EQ(victims, replay_victims);
  EXPECT_EQ(post_mortems,
            replay_sink.Count(obs::EventKind::kCyclePostMortem));
}

void RunStressAndReplay(const WorkloadConfig& config) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);

  ConcurrentServiceOptions options;
  options.num_shards = config.num_shards;
  options.detection_mode = DetectionMode::kPeriodic;
  // The replay oracle depends on the stop-the-world linearization: a
  // pass's events must describe the live state at their stream position.
  // A pauseless pass detects over a sealed epoch that may trail the live
  // shards, so its stream is validated differently
  // (pauseless_service_test.cc).
  options.snapshot_strategy = SnapshotStrategy::kStopTheWorld;
  options.detection_period = std::chrono::microseconds(500);
  options.detection_threads = 2;
  options.cost_policy = CostPolicy::kLocksHeld;
  options.event_bus = &bus;
  Result<std::unique_ptr<ConcurrentLockService>> service =
      ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<size_t> committed{0};
  {
    std::vector<std::thread> threads;
    for (int worker = 0; worker < config.workers; ++worker) {
      threads.emplace_back(RunWorker, std::ref(**service), std::cref(config),
                           worker, std::ref(committed));
    }
    for (std::thread& t : threads) t.join();
  }
  // One forced final pass so the replay exercises detection even when the
  // workers outran the detector period on this machine.
  (void)(*service)->RunDetectionPass();
  const size_t victims = (*service)->deadlock_victims();
  const uint64_t passes = (*service)->snapshot_epoch();
  service->reset();  // joins the detector thread; the stream is final

  EXPECT_GT(committed.load(), 0u);
  EXPECT_GT(passes, 0u);
  std::cout << "[          ] shards=" << config.num_shards
            << " workers=" << config.workers
            << " committed=" << committed.load() << " victims=" << victims
            << " passes=" << passes << "\n";
  SCOPED_TRACE(::testing::Message()
               << "shards=" << config.num_shards << " workers="
               << config.workers << " committed=" << committed.load()
               << " victims=" << victims << " passes=" << passes);
  ReplayAndCompare(sink.events(), committed.load());
}

TEST(ConcurrentStressTest, ShardedRunReplaysAgainstSequentialManager) {
  WorkloadConfig config;
  config.num_shards = 8;
  config.workers = 4;
  config.txns_per_worker = 150;
  config.seed = 20260806;
  RunStressAndReplay(config);
}

TEST(ConcurrentStressTest, FewShardsHighContentionReplay) {
  WorkloadConfig config;
  config.num_shards = 3;
  config.workers = 3;
  config.txns_per_worker = 200;
  config.resources = 6;  // hot: real deadlocks, real victim traffic
  config.max_ops = 4;
  config.seed = 424242;
  RunStressAndReplay(config);
}

// Guaranteed victim traffic through the replay: every round both workers
// hold their first lock before either requests the second (barrier), so a
// cross-deadlock forms every time and the detector thread must abort
// exactly one of the two for the round to finish.  The recorded stream
// then replays kTxnAbort(a=1) / kCycleResolved / kCyclePostMortem parity,
// not just grant-order parity.
TEST(ConcurrentStressTest, CrossingDeadlocksReplayWithVictims) {
  obs::EventBus bus;
  obs::CollectorSink sink;
  bus.Subscribe(&sink);
  ConcurrentServiceOptions options;
  options.num_shards = 4;
  options.detection_mode = DetectionMode::kPeriodic;
  // Replay oracle: see RunStressAndReplay.
  options.snapshot_strategy = SnapshotStrategy::kStopTheWorld;
  options.detection_period = std::chrono::microseconds(300);
  options.detection_threads = 2;
  options.event_bus = &bus;
  Result<std::unique_ptr<ConcurrentLockService>> service =
      ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ConcurrentLockService& s = **service;

  constexpr int kRounds = 40;
  std::barrier sync(2);
  std::atomic<size_t> victims{0};
  std::atomic<size_t> commits{0};
  auto runner = [&](lock::ResourceId first, lock::ResourceId second) {
    for (int round = 0; round < kRounds; ++round) {
      const lock::TransactionId t = *s.Begin();
      Status held = s.AcquireBlocking(t, first, kX);
      bool alive = held.ok();
      ASSERT_TRUE(held.ok() || held.IsAborted()) << held.ToString();
      sync.arrive_and_wait();  // both firsts held: the cross is certain
      if (alive) {
        Status crossed = s.AcquireBlocking(t, second, kX);
        if (crossed.IsAborted()) {
          ++victims;
        } else {
          ASSERT_TRUE(crossed.ok()) << crossed.ToString();
          ASSERT_TRUE(s.Commit(t).ok());
          ++commits;
        }
      }
      sync.arrive_and_wait();  // round fully settled before the next one
    }
  };
  {
    std::thread a(runner, 1, 2);
    std::thread b(runner, 2, 1);
    a.join();
    b.join();
  }
  const size_t service_victims = s.deadlock_victims();
  service->reset();

  EXPECT_EQ(victims.load(), static_cast<size_t>(kRounds));
  EXPECT_EQ(commits.load(), static_cast<size_t>(kRounds));
  EXPECT_EQ(service_victims, static_cast<size_t>(kRounds));
  ReplayAndCompare(sink.events(), commits.load());
}

// Bus-less run: no observability mutex in play, so shards truly proceed
// independently.  Nothing to replay — the assertions are liveness (no
// hang), a consistent victim count, and live shard/pause accounting.
TEST(ConcurrentStressTest, UnobservedShardedRunCompletes) {
  ConcurrentServiceOptions options;
  options.num_shards = 16;
  options.detection_mode = DetectionMode::kPeriodic;
  options.detection_period = std::chrono::microseconds(500);
  options.detection_threads = 2;
  Result<std::unique_ptr<ConcurrentLockService>> service =
      ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->num_shards(), 16u);

  WorkloadConfig config;
  config.num_shards = 16;
  config.workers = 8;
  config.txns_per_worker = 25;
  config.seed = 99;
  std::atomic<size_t> committed{0};
  std::vector<std::thread> threads;
  for (int worker = 0; worker < config.workers; ++worker) {
    threads.emplace_back(RunWorker, std::ref(**service), std::cref(config),
                         worker, std::ref(committed));
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(committed.load(), 0u);

  // Force one final pass so epoch/pause accounting is visibly live even
  // if the period never elapsed under this scheduler.
  (void)(*service)->RunDetectionPass();
  EXPECT_GE((*service)->snapshot_epoch(), 1u);
  EXPECT_GE((*service)->pause_times_ns().size(), 1u);
  uint64_t total_ops = 0;
  for (size_t s = 0; s < (*service)->num_shards(); ++s) {
    total_ops += (*service)->shard_stats(s).ops;
  }
  EXPECT_GT(total_ops, 0u);
}

}  // namespace
}  // namespace twbg::txn
