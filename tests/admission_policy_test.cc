// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the total-mode vs group-mode admission ablation (§2).  The
// paper's total mode folds pending conversion modes into the admission
// check; Gray's group mode uses granted modes only, so newcomers slip in
// ahead of blocked upgraders and delay them arbitrarily — the
// inefficiency §2 alludes to ("the reader shall understand why the total
// mode is more efficient than the group mode after reading Section 3").

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lock/lock_manager.h"

namespace twbg::lock {
namespace {

using enum LockMode;

TEST(AdmissionPolicyTest, GroupModeFoldsGrantedOnly) {
  ResourceState r(1);
  ASSERT_TRUE(r.Request(1, kIS).ok());
  ASSERT_TRUE(r.Request(2, kIX).ok());
  ASSERT_TRUE(r.Request(1, kS).ok());  // blocked upgrade to S
  EXPECT_EQ(r.GroupMode(), kIX);       // granted modes only
  EXPECT_EQ(r.total_mode(), kSIX);     // pending S folded in
  EXPECT_EQ(r.AdmissionMode(), kSIX);  // default policy: total mode
}

TEST(AdmissionPolicyTest, TotalModeShieldsPendingUpgrade) {
  // Holder (T1, IS, S) pending; a new IX requestor conflicts with the
  // pending S, so total-mode admission queues it.
  ResourceState r(1, AdmissionPolicy::kTotalMode);
  ASSERT_TRUE(r.Request(1, kIS).ok());
  ASSERT_TRUE(r.Request(2, kIX).ok());
  ASSERT_TRUE(r.Request(1, kS).ok());      // T1 upgrade blocked by T2
  Result<RequestOutcome> newcomer = r.Request(3, kIX);
  ASSERT_TRUE(newcomer.ok());
  EXPECT_EQ(*newcomer, RequestOutcome::kBlocked);  // queued behind upgrade
  // When T2 leaves, the upgrade is granted FIRST; T3's IX stays queued
  // behind the now-granted S.
  std::vector<TransactionId> granted = r.Remove(2);
  EXPECT_EQ(granted, (std::vector<TransactionId>{1}));
  EXPECT_EQ(r.FindHolder(1)->granted, kS);
  EXPECT_TRUE(r.InQueue(3));
}

TEST(AdmissionPolicyTest, GroupModeAdmitsOverPendingUpgrade) {
  // Same scenario under group-mode admission: T3's IX is compatible with
  // the granted {IS, IX} group, so it is granted immediately — and T1's
  // pending upgrade now has one more blocker.
  ResourceState r(1, AdmissionPolicy::kGroupMode);
  ASSERT_TRUE(r.Request(1, kIS).ok());
  ASSERT_TRUE(r.Request(2, kIX).ok());
  ASSERT_TRUE(r.Request(1, kS).ok());
  Result<RequestOutcome> newcomer = r.Request(3, kIX);
  ASSERT_TRUE(newcomer.ok());
  EXPECT_EQ(*newcomer, RequestOutcome::kGranted);
  EXPECT_TRUE(r.CheckInvariants().ok());
  // T2 leaving is no longer enough: T3's IX still blocks the S upgrade.
  EXPECT_TRUE(r.Remove(2).empty());
  EXPECT_TRUE(r.FindHolder(1)->IsBlocked());
  // A stream of IX newcomers can starve the upgrader indefinitely.
  ASSERT_TRUE(r.Request(4, kIX).ok());
  EXPECT_EQ(r.FindHolder(4)->granted, kIX);
  EXPECT_TRUE(r.Remove(3).empty());
  EXPECT_TRUE(r.FindHolder(1)->IsBlocked());  // still starved
}

TEST(AdmissionPolicyTest, PoliciesAgreeWithoutPendingConversions) {
  // With no blocked conversions, tm == group mode and the policies are
  // observationally identical.
  common::Rng rng(555);
  for (int round = 0; round < 60; ++round) {
    LockManager total(AdmissionPolicy::kTotalMode);
    LockManager group(AdmissionPolicy::kGroupMode);
    for (int op = 0; op < 50; ++op) {
      TransactionId tid = static_cast<TransactionId>(rng.NextInRange(1, 6));
      ResourceId rid = static_cast<ResourceId>(rng.NextInRange(1, 3));
      // No conversions: each transaction uses one fixed mode per resource.
      LockMode mode = kRealModes[(tid + rid) % 5];
      if (rng.NextBernoulli(0.15)) {
        std::vector<TransactionId> a = total.ReleaseAll(tid);
        std::vector<TransactionId> b = group.ReleaseAll(tid);
        ASSERT_EQ(a, b);
        continue;
      }
      Result<RequestOutcome> a = total.Acquire(tid, rid, mode);
      Result<RequestOutcome> b = group.Acquire(tid, rid, mode);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        ASSERT_EQ(*a, *b);
      }
    }
    ASSERT_EQ(total.table().ToString(), group.table().ToString());
  }
}

TEST(AdmissionPolicyTest, GroupModeKeepsInvariantsUnderRandomLoad) {
  common::Rng rng(777);
  for (int round = 0; round < 60; ++round) {
    LockManager lm(AdmissionPolicy::kGroupMode);
    for (int op = 0; op < 80; ++op) {
      TransactionId tid = static_cast<TransactionId>(rng.NextInRange(1, 8));
      if (rng.NextBernoulli(0.15)) {
        lm.ReleaseAll(tid);
        continue;
      }
      (void)lm.Acquire(tid,
                       static_cast<ResourceId>(rng.NextInRange(1, 3)),
                       kRealModes[rng.NextBelow(5)]);
      Status invariants = lm.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    }
  }
}

TEST(AdmissionPolicyTest, TablePolicyPropagates) {
  LockTable table(AdmissionPolicy::kGroupMode);
  EXPECT_EQ(table.policy(), AdmissionPolicy::kGroupMode);
  EXPECT_EQ(table.GetOrCreate(5).policy(), AdmissionPolicy::kGroupMode);
}

}  // namespace
}  // namespace twbg::lock
