// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for victim-candidate enumeration (TDR-1 / TDR-2, §4) and
// minimum-cost selection (§5) on the paper's Example 4.1.

#include "core/victim.h"

#include <gtest/gtest.h>

#include "core/examples_catalog.h"
#include "lock/lock_manager.h"

namespace twbg::core {
namespace {

using enum lock::LockMode;

// The paper's four-TRRP cycle of Example 4.1.
const std::vector<lock::TransactionId> kMainCycle = {1, 2, 5, 6, 7, 8, 9, 3};

struct Fixture {
  lock::LockManager lm;
  HwTwbg graph;
  CostTable costs;
  DetectorOptions options;

  Fixture() {
    BuildExample41(lm);
    graph = HwTwbg::Build(lm.table());
  }
};

TEST(VictimTest, Example41MainCycleCandidates) {
  Fixture f;
  Result<std::vector<VictimCandidate>> candidates =
      EnumerateCandidates(f.graph, kMainCycle, f.lm.table(), f.costs,
                          f.options);
  ASSERT_TRUE(candidates.ok());
  // "there are four victim candidates from TDR-1 {T1, T2, T7, T3} and
  //  there is one victim candidate from TDR-2 {T8}".
  ASSERT_EQ(candidates->size(), 5u);
  std::vector<lock::TransactionId> abort_junctions;
  const VictimCandidate* repos = nullptr;
  for (const VictimCandidate& c : *candidates) {
    if (c.kind == VictimKind::kAbort) {
      abort_junctions.push_back(c.junction);
    } else {
      repos = &c;
    }
  }
  EXPECT_EQ(abort_junctions,
            (std::vector<lock::TransactionId>{1, 2, 7, 3}));
  ASSERT_NE(repos, nullptr);
  EXPECT_EQ(repos->junction, 3u);
  EXPECT_EQ(repos->resource, kR2);
  EXPECT_EQ(repos->st, (std::vector<lock::TransactionId>{8}));
  EXPECT_EQ(repos->av, (std::vector<lock::TransactionId>{9, 3}));
}

TEST(VictimTest, Tdr2CostIsHalfTheStSum) {
  Fixture f;
  f.costs.Set(8, 7.0);
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  const VictimCandidate& repos = candidates->back();
  ASSERT_EQ(repos.kind, VictimKind::kReposition);
  EXPECT_DOUBLE_EQ(repos.cost, 3.5);
}

TEST(VictimTest, UniformCostsPreferReposition) {
  Fixture f;
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  size_t chosen = SelectVictim(*candidates);
  EXPECT_EQ((*candidates)[chosen].kind, VictimKind::kReposition);
}

TEST(VictimTest, ExpensiveStMakesAbortWin) {
  Fixture f;
  f.costs.Set(8, 10.0);  // TDR-2 cost 5 > abort costs of 1
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  size_t chosen = SelectVictim(*candidates);
  EXPECT_EQ((*candidates)[chosen].kind, VictimKind::kAbort);
  // Tie among the four aborts: lowest junction id.
  EXPECT_EQ((*candidates)[chosen].junction, 1u);
}

TEST(VictimTest, CheapestTransactionWins) {
  Fixture f;
  f.costs.Set(1, 9.0);
  f.costs.Set(2, 8.0);
  f.costs.Set(7, 0.25);
  f.costs.Set(3, 5.0);
  f.costs.Set(8, 10.0);
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  size_t chosen = SelectVictim(*candidates);
  EXPECT_EQ((*candidates)[chosen].kind, VictimKind::kAbort);
  EXPECT_EQ((*candidates)[chosen].junction, 7u);
}

TEST(VictimTest, DisablingTdr2RemovesRepositionCandidates) {
  Fixture f;
  f.options.enable_tdr2 = false;
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 4u);
  for (const VictimCandidate& c : *candidates) {
    EXPECT_EQ(c.kind, VictimKind::kAbort);
  }
}

TEST(VictimTest, InnerCycleCandidates) {
  Fixture f;
  // The innermost cycle (T3,T6,T7,T8,T9): junctions T3 and T7; TDR-2 at
  // T3 again.
  auto candidates = EnumerateCandidates(f.graph, {3, 6, 7, 8, 9},
                                        f.lm.table(), f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  // Enumeration visits junction T3 (abort then its TDR-2) before T7.
  ASSERT_EQ(candidates->size(), 3u);
  EXPECT_EQ((*candidates)[0].junction, 3u);
  EXPECT_EQ((*candidates)[0].kind, VictimKind::kAbort);
  EXPECT_EQ((*candidates)[1].kind, VictimKind::kReposition);
  EXPECT_EQ((*candidates)[1].junction, 3u);
  EXPECT_EQ((*candidates)[1].st, (std::vector<lock::TransactionId>{8}));
  EXPECT_EQ((*candidates)[2].junction, 7u);
  EXPECT_EQ((*candidates)[2].kind, VictimKind::kAbort);
}

TEST(VictimTest, Tdr2InapplicableWhenJunctionConflictsWithTotalMode) {
  // Junction T7 queues on R1 with IX while tm(R1) = SIX: its incoming edge
  // is W-labeled but TDR-2 must not be offered.
  Fixture f;
  auto candidates = EnumerateCandidates(f.graph, kMainCycle, f.lm.table(),
                                        f.costs, f.options);
  ASSERT_TRUE(candidates.ok());
  for (const VictimCandidate& c : *candidates) {
    if (c.kind == VictimKind::kReposition) {
      EXPECT_NE(c.junction, 7u);
    }
  }
}

TEST(VictimTest, EnumerateRejectsNonCycle) {
  Fixture f;
  EXPECT_FALSE(
      EnumerateCandidates(f.graph, {1, 9, 4}, f.lm.table(), f.costs,
                          f.options)
          .ok());
}

TEST(VictimTest, CandidateToString) {
  VictimCandidate abort;
  abort.kind = VictimKind::kAbort;
  abort.junction = 3;
  abort.cost = 1.0;
  EXPECT_EQ(abort.ToString(), "abort T3 (cost 1.00)");
  VictimCandidate repos;
  repos.kind = VictimKind::kReposition;
  repos.junction = 3;
  repos.resource = 2;
  repos.cost = 0.5;
  repos.st = {8};
  EXPECT_EQ(repos.ToString(),
            "reposition {T8} on R2 at junction T3 (cost 0.50)");
}

}  // namespace
}  // namespace twbg::core
