// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Lock-wait deadlines, bottom-up: LockManager::CancelWait queue-invariant
// maintenance, TransactionManager logical-tick deadlines (expiry,
// per-call overrides, abort-after-N escalation, transaction budgets), the
// concurrent service's wall-clock deadlines in both engines, and the
// same-tick deadline-expiry-vs-detection races — a wait must be resolved
// exactly once no matter which mechanism gets there first.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "lock/lock_manager.h"
#include "txn/concurrent_service.h"
#include "txn/transaction_manager.h"

namespace twbg {
namespace {

using lock::LockMode;
using lock::RequestOutcome;
using lock::TransactionId;

// ---------------------------------------------------------------------
// Lock layer: CancelWait.
// ---------------------------------------------------------------------

TEST(CancelWaitTest, WithdrawnRequestUnblocksCompatibleWaiters) {
  lock::LockManager lm;
  // T1 holds S; T2 queues for X; T3's S is admission-blocked behind the
  // queued X (total-mode).  Withdrawing T2 must grant T3.
  EXPECT_EQ(*lm.Acquire(1, 10, LockMode::kS), RequestOutcome::kGranted);
  EXPECT_EQ(*lm.Acquire(2, 10, LockMode::kX), RequestOutcome::kBlocked);
  EXPECT_EQ(*lm.Acquire(3, 10, LockMode::kS), RequestOutcome::kBlocked);

  Result<std::vector<TransactionId>> granted = lm.CancelWait(2);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(*granted, std::vector<TransactionId>{3});
  EXPECT_FALSE(lm.IsBlocked(2));
  EXPECT_FALSE(lm.IsBlocked(3));
  EXPECT_TRUE(lm.CheckInvariants(/*deep=*/true).ok());
}

TEST(CancelWaitTest, HoldingsSurviveTheCancellation) {
  lock::LockManager lm;
  EXPECT_EQ(*lm.Acquire(2, 20, LockMode::kS), RequestOutcome::kGranted);
  EXPECT_EQ(*lm.Acquire(1, 30, LockMode::kX), RequestOutcome::kGranted);
  EXPECT_EQ(*lm.Acquire(2, 30, LockMode::kX), RequestOutcome::kBlocked);
  const uint64_t span = lm.WaitSpan(2);

  ASSERT_TRUE(lm.CancelWait(2).ok());
  // The S lock on resource 20 is untouched...
  EXPECT_EQ(*lm.Acquire(2, 20, LockMode::kS), RequestOutcome::kAlreadyHeld);
  // ...and the wait span is retained (like after a wakeup) so the caller
  // can stamp its kDeadlineExpired event.
  EXPECT_EQ(lm.WaitSpan(2), span);
  EXPECT_NE(span, 0u);
  EXPECT_TRUE(lm.CheckInvariants(/*deep=*/true).ok());
}

TEST(CancelWaitTest, FailedPreconditionWhenNotBlocked) {
  lock::LockManager lm;
  EXPECT_EQ(*lm.Acquire(1, 10, LockMode::kS), RequestOutcome::kGranted);
  EXPECT_TRUE(lm.CancelWait(1).status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------
// TransactionManager: logical-tick deadlines.
// ---------------------------------------------------------------------

txn::TransactionManagerOptions PeriodicOptions() {
  txn::TransactionManagerOptions options;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  return options;
}

TEST(TmDeadlineTest, ExpiredWaitIsWithdrawnNotAborted) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 5;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());

  // Not due yet: registered at tick 0, lock_wait 5.
  tm.AdvanceTime(4);
  EXPECT_TRUE(tm.ExpireDeadlines().empty());
  EXPECT_EQ(*tm.State(t2), txn::TxnState::kBlocked);

  tm.AdvanceTime(5);
  txn::ExpiryReport report = tm.ExpireDeadlines();
  EXPECT_EQ(report.expired, std::vector<TransactionId>{t2});
  EXPECT_TRUE(report.aborted.empty());
  // The wait was withdrawn, not escalated: t2 is runnable again and may
  // re-issue the request.
  EXPECT_EQ(*tm.State(t2), txn::TxnState::kActive);
  EXPECT_TRUE(tm.CheckInvariants().ok());

  EXPECT_TRUE(tm.Commit(t1).ok());
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).ok());
  EXPECT_TRUE(tm.Commit(t2).ok());
}

TEST(TmDeadlineTest, ExpiryGrantsTheNextCompatibleWaiter) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 3;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  const TransactionId t3 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kS).ok());
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());
  // t3's deadline is pushed past the sweep so only t2 expires.
  txn::AcquireOptions late;
  late.deadline_at = 100;
  EXPECT_TRUE(tm.Acquire(t3, 1, LockMode::kS, late).IsWouldBlock());

  tm.AdvanceTime(3);
  txn::ExpiryReport report = tm.ExpireDeadlines();
  EXPECT_EQ(report.expired, std::vector<TransactionId>{t2});
  // Withdrawing the X unblocks the admission-blocked S behind it.
  EXPECT_EQ(report.granted, std::vector<TransactionId>{t3});
  EXPECT_EQ(*tm.State(t3), txn::TxnState::kActive);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

TEST(TmDeadlineTest, PerCallOverridesBeatTheConfiguredDefault) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 2;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());

  // An explicit deadline_at of 0 disarms the configured default.
  txn::AcquireOptions no_deadline;
  no_deadline.deadline_at = 0;
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX, no_deadline).IsWouldBlock());
  tm.AdvanceTime(50);
  EXPECT_TRUE(tm.ExpireDeadlines().empty());
  EXPECT_EQ(*tm.State(t2), txn::TxnState::kBlocked);

  // An explicit absolute deadline beats the default too.
  ASSERT_TRUE(tm.CancelWait(t2).ok());
  txn::AcquireOptions at55;
  at55.deadline_at = 55;
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX, at55).IsWouldBlock());
  tm.AdvanceTime(54);
  EXPECT_TRUE(tm.ExpireDeadlines().empty());
  tm.AdvanceTime(55);
  EXPECT_EQ(tm.ExpireDeadlines().expired, std::vector<TransactionId>{t2});
}

TEST(TmDeadlineTest, AbortAfterNEscalates) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 2;
  options.robustness.deadline.abort_after = 2;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());

  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());
  tm.AdvanceTime(2);
  txn::ExpiryReport first = tm.ExpireDeadlines();
  EXPECT_EQ(first.expired, std::vector<TransactionId>{t2});
  EXPECT_TRUE(first.aborted.empty());

  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());
  tm.AdvanceTime(4);
  txn::ExpiryReport second = tm.ExpireDeadlines();
  EXPECT_EQ(second.expired, std::vector<TransactionId>{t2});
  EXPECT_EQ(second.aborted, std::vector<TransactionId>{t2});
  EXPECT_EQ(*tm.State(t2), txn::TxnState::kAborted);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

TEST(TmDeadlineTest, TransactionBudgetAbortsRunnableTransactions) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.txn_budget = 10;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());
  tm.AdvanceTime(9);
  EXPECT_TRUE(tm.ExpireDeadlines().empty());
  tm.AdvanceTime(10);
  txn::ExpiryReport report = tm.ExpireDeadlines();
  EXPECT_EQ(report.aborted, std::vector<TransactionId>{t1});
  EXPECT_TRUE(report.expired.empty());  // it was never blocked
  EXPECT_EQ(*tm.State(t1), txn::TxnState::kAborted);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

// Same-tick race, sequential engine, expiry first: once both waits are
// withdrawn there is no cycle left, so the detection pass must resolve
// nothing — each wait is resolved exactly once.
TEST(TmDeadlineTest, SameTickExpiryThenDetectionResolvesOnce) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 2;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());
  EXPECT_TRUE(tm.Acquire(t2, 2, LockMode::kX).ok());
  EXPECT_TRUE(tm.Acquire(t1, 2, LockMode::kX).IsWouldBlock());
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());

  tm.AdvanceTime(2);
  txn::ExpiryReport expiry = tm.ExpireDeadlines();
  EXPECT_EQ(expiry.expired.size(), 2u);
  EXPECT_TRUE(expiry.aborted.empty());

  core::ResolutionReport detection = tm.RunDetection();
  EXPECT_TRUE(detection.aborted.empty());  // the cycle is already gone
  EXPECT_EQ(*tm.State(t1), txn::TxnState::kActive);
  EXPECT_EQ(*tm.State(t2), txn::TxnState::kActive);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

// Same-tick race, detection first: the pass aborts a victim and grants
// the survivor, so the expiry sweep at the very same tick finds no
// blocked wait left to cancel.
TEST(TmDeadlineTest, SameTickDetectionThenExpiryResolvesOnce) {
  txn::TransactionManagerOptions options = PeriodicOptions();
  options.robustness.deadline.lock_wait = 2;
  Result<std::unique_ptr<txn::TransactionManager>> created =
      txn::TransactionManager::Create(options);
  ASSERT_TRUE(created.ok());
  txn::TransactionManager& tm = **created;

  const TransactionId t1 = *tm.Begin();
  const TransactionId t2 = *tm.Begin();
  EXPECT_TRUE(tm.Acquire(t1, 1, LockMode::kX).ok());
  EXPECT_TRUE(tm.Acquire(t2, 2, LockMode::kX).ok());
  EXPECT_TRUE(tm.Acquire(t1, 2, LockMode::kX).IsWouldBlock());
  EXPECT_TRUE(tm.Acquire(t2, 1, LockMode::kX).IsWouldBlock());

  tm.AdvanceTime(2);
  core::ResolutionReport detection = tm.RunDetection();
  ASSERT_EQ(detection.aborted.size(), 1u);
  const TransactionId victim = detection.aborted[0];
  const TransactionId survivor = victim == t1 ? t2 : t1;

  EXPECT_TRUE(tm.ExpireDeadlines().empty());
  EXPECT_EQ(*tm.State(victim), txn::TxnState::kAborted);
  EXPECT_EQ(*tm.State(survivor), txn::TxnState::kActive);
  EXPECT_TRUE(tm.CheckInvariants().ok());
}

// ---------------------------------------------------------------------
// Concurrent service: wall-clock deadlines (microseconds).
// ---------------------------------------------------------------------

TEST(ServiceDeadlineTest, ContinuousEngineExpiresAndRecovers) {
  txn::ConcurrentServiceOptions options;  // kContinuous
  options.robustness.deadline.lock_wait = 5'000;  // 5 ms
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  const TransactionId t2 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());

  Status blocked = service.AcquireBlocking(t2, 1, LockMode::kX);
  EXPECT_TRUE(blocked.IsDeadlineExceeded()) << blocked.ToString();
  EXPECT_EQ(service.deadline_expiries(), 1u);
  EXPECT_EQ(service.deadline_aborts(), 0u);
  // The request was withdrawn; the transaction survived and can retry.
  EXPECT_EQ(*service.State(t2), txn::TxnState::kActive);
  EXPECT_TRUE(service.CheckInvariants().ok());

  EXPECT_TRUE(service.Commit(t1).ok());
  EXPECT_TRUE(service.AcquireBlocking(t2, 1, LockMode::kX).ok());
  EXPECT_TRUE(service.Commit(t2).ok());
}

TEST(ServiceDeadlineTest, ShardedEngineExpiresAndEscalates) {
  txn::ConcurrentServiceOptions options;
  options.num_shards = 2;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  options.robustness.deadline.lock_wait = 5'000;  // 5 ms
  options.robustness.deadline.abort_after = 1;    // first expiry escalates
  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(options);
  ASSERT_TRUE(created.ok());
  txn::ConcurrentLockService& service = **created;

  const TransactionId t1 = *service.Begin();
  const TransactionId t2 = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t1, 1, LockMode::kX).ok());

  Status blocked = service.AcquireBlocking(t2, 1, LockMode::kX);
  EXPECT_TRUE(blocked.IsDeadlineExceeded()) << blocked.ToString();
  EXPECT_EQ(service.deadline_expiries(), 1u);
  EXPECT_EQ(service.deadline_aborts(), 1u);
  EXPECT_EQ(*service.State(t2), txn::TxnState::kAborted);
  EXPECT_TRUE(service.CheckInvariants().ok());
  EXPECT_TRUE(service.Commit(t1).ok());
}

// Same-tick race, threaded sharded engine: two threads deadlock with
// short deadlines armed while a third hammers detection passes.  Whoever
// wins, every failed wait must come back with exactly one canonical
// resolution code and the service must stay invariant-clean.
TEST(ServiceDeadlineTest, ExpiryVersusDetectionRaceIsSingleResolve) {
  for (int round = 0; round < 20; ++round) {
    txn::ConcurrentServiceOptions options;
    options.num_shards = 2;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.robustness.deadline.lock_wait = 500;  // 0.5 ms
    options.robustness.deadline.abort_after = 1;
    Result<std::unique_ptr<txn::ConcurrentLockService>> created =
        txn::ConcurrentLockService::Create(options);
    ASSERT_TRUE(created.ok());
    txn::ConcurrentLockService& service = **created;

    std::atomic<bool> stop{false};
    std::atomic<int> resolutions{0};
    auto worker = [&](lock::ResourceId first, lock::ResourceId second) {
      const TransactionId tid = *service.Begin();
      Status a = service.AcquireBlocking(tid, first, LockMode::kX);
      ASSERT_TRUE(a.ok() || a.IsDeadlockVictim() || a.IsDeadlineExceeded())
          << a.ToString();
      if (!a.ok()) {
        resolutions.fetch_add(1);
        return;  // already resolved (and aborted: abort_after == 1)
      }
      Status b = service.AcquireBlocking(tid, second, LockMode::kX);
      ASSERT_TRUE(b.ok() || b.IsDeadlockVictim() || b.IsDeadlineExceeded())
          << b.ToString();
      if (!b.ok()) {
        // Exactly one mechanism resolved this wait; the transaction must
        // already be dead (victim, or deadline escalation).
        EXPECT_FALSE(b.IsDeadlockVictim() && b.IsDeadlineExceeded());
        EXPECT_EQ(*service.State(tid), txn::TxnState::kAborted);
        resolutions.fetch_add(1);
        return;
      }
      EXPECT_TRUE(service.Commit(tid).ok());
    };
    std::thread detector([&] {
      while (!stop.load()) service.RunDetectionPass();
    });
    std::thread w1(worker, 1, 2);
    std::thread w2(worker, 2, 1);
    w1.join();
    w2.join();
    stop.store(true);
    detector.join();

    // The deadlock (if it formed) was resolved at most once per waiter.
    EXPECT_LE(resolutions.load(), 2);
    EXPECT_EQ(service.deadline_aborts() + service.deadlock_victims(),
              static_cast<uint64_t>(resolutions.load()));
    EXPECT_TRUE(service.CheckInvariants(/*deep=*/true).ok());
  }
}

}  // namespace
}  // namespace twbg
