// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tests for the thread-safe service wrapper: real threads, real blocking
// waits, inline deadlock resolution — no run may hang.

#include "txn/concurrent_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

namespace twbg::txn {
namespace {

using enum lock::LockMode;

TEST(ConcurrentServiceTest, SingleThreadedBasics) {
  auto owned = ConcurrentLockService::Create(ConcurrentServiceOptions{});
  ASSERT_TRUE(owned.ok());
  ConcurrentLockService& service = **owned;
  lock::TransactionId t = *service.Begin();
  EXPECT_TRUE(service.AcquireBlocking(t, 1, kX).ok());
  EXPECT_TRUE(service.AcquireBlocking(t, 1, kX).ok());  // covered: no-op
  EXPECT_TRUE(service.Commit(t).ok());
  EXPECT_EQ(*service.State(t), TxnState::kCommitted);
  EXPECT_TRUE(service.Commit(t).IsFailedPrecondition());
}

TEST(ConcurrentServiceTest, WaiterIsWokenByCommit) {
  auto owned = ConcurrentLockService::Create(ConcurrentServiceOptions{});
  ASSERT_TRUE(owned.ok());
  ConcurrentLockService& service = **owned;
  lock::TransactionId holder = *service.Begin();
  ASSERT_TRUE(service.AcquireBlocking(holder, 1, kX).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    lock::TransactionId t = *service.Begin();
    Status status = service.AcquireBlocking(t, 1, kS);
    EXPECT_TRUE(status.ok()) << status.ToString();
    granted = true;
    EXPECT_TRUE(service.Commit(t).ok());
  });
  // Give the waiter time to park, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  ASSERT_TRUE(service.Commit(holder).ok());
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(ConcurrentServiceTest, DeterministicCrossDeadlockResolvedInline) {
  // Both threads take their first lock, rendezvous, then cross: a certain
  // deadlock.  Exactly one becomes the victim; the other completes.
  auto owned = ConcurrentLockService::Create(ConcurrentServiceOptions{});
  ASSERT_TRUE(owned.ok());
  ConcurrentLockService& service = **owned;
  std::barrier rendezvous(2);
  std::atomic<int> victims{0};
  std::atomic<int> commits{0};
  auto runner = [&](lock::ResourceId first, lock::ResourceId second) {
    lock::TransactionId t = *service.Begin();
    ASSERT_TRUE(service.AcquireBlocking(t, first, kX).ok());
    rendezvous.arrive_and_wait();
    Status status = service.AcquireBlocking(t, second, kX);
    if (status.IsAborted()) {
      ++victims;
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(service.Commit(t).ok());
    ++commits;
  };
  std::thread a(runner, 1, 2);
  std::thread b(runner, 2, 1);
  a.join();
  b.join();
  EXPECT_EQ(victims.load(), 1);
  EXPECT_EQ(commits.load(), 1);
  EXPECT_EQ(service.deadlock_victims(), 1u);
}

TEST(ConcurrentServiceTest, CrossingTransfersResolveWithoutHanging) {
  auto owned = ConcurrentLockService::Create(ConcurrentServiceOptions{});
  ASSERT_TRUE(owned.ok());
  ConcurrentLockService& service = **owned;
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 50;
  std::atomic<int> committed{0};
  std::atomic<int> victim_retries{0};
  std::vector<std::thread> threads;
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      // Each worker transfers between two hot accounts in its own order —
      // a deadlock factory (whether deadlocks actually occur depends on
      // scheduling; the invariant is that nothing hangs and every
      // transfer eventually commits).
      const lock::ResourceId a = (worker % 2 == 0) ? 1 : 2;
      const lock::ResourceId b = (worker % 2 == 0) ? 2 : 1;
      for (int i = 0; i < kTransfersPerThread; ++i) {
        for (;;) {
          lock::TransactionId t = *service.Begin();
          Status first = service.AcquireBlocking(t, a, kX);
          if (first.IsAborted()) {
            ++victim_retries;
            // Brief backoff before retrying: immediate re-acquisition of
            // the same two hot locks convoys instrumented (TSan) builds.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
          }
          ASSERT_TRUE(first.ok());
          std::this_thread::yield();  // widen the interleaving window
          Status second = service.AcquireBlocking(t, b, kX);
          if (second.IsAborted()) {
            ++victim_retries;
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
          }
          ASSERT_TRUE(second.ok());
          ASSERT_TRUE(service.Commit(t).ok());
          ++committed;
          break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(committed.load(), kThreads * kTransfersPerThread);
  EXPECT_EQ(static_cast<size_t>(victim_retries.load()),
            service.deadlock_victims());
}

TEST(ConcurrentServiceTest, ManyThreadsManyResources) {
  auto owned = ConcurrentLockService::Create(ConcurrentServiceOptions{});
  ASSERT_TRUE(owned.ok());
  ConcurrentLockService& service = **owned;
  constexpr int kThreads = 8;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      for (int i = 0; i < 30; ++i) {
        for (;;) {
          lock::TransactionId t = *service.Begin();
          bool dead = false;
          // Lock three resources in a worker-dependent rotation.
          for (int k = 0; k < 3; ++k) {
            lock::ResourceId rid =
                static_cast<lock::ResourceId>(1 + (worker + k * i) % 5);
            Status status = service.AcquireBlocking(
                t, rid, k == 2 ? kX : kS);
            if (status.IsAborted()) {
              dead = true;
              break;
            }
            ASSERT_TRUE(status.ok()) << status.ToString();
          }
          if (dead) continue;
          ASSERT_TRUE(service.Commit(t).ok());
          ++committed;
          break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(committed.load(), kThreads * 30);
}

TEST(ConcurrentServiceCreateTest, RejectsUnsupportedCombinations) {
  {
    ConcurrentServiceOptions options;
    options.num_shards = 0;
    EXPECT_TRUE(ConcurrentLockService::Create(options)
                    .status().IsInvalidArgument());
  }
  {
    ConcurrentServiceOptions options;
    options.num_shards = 65;
    options.detection_mode = DetectionMode::kPeriodic;
    EXPECT_TRUE(ConcurrentLockService::Create(options)
                    .status().IsInvalidArgument());
  }
  {
    // The historical silent coercion is now an explicit error: the
    // continuous engine has no shards, no detector thread, no pool.
    ConcurrentServiceOptions options;
    options.num_shards = 4;
    options.detection_mode = DetectionMode::kContinuous;
    EXPECT_TRUE(ConcurrentLockService::Create(options)
                    .status().IsInvalidArgument());
  }
  {
    ConcurrentServiceOptions options;
    options.detection_period = std::chrono::microseconds(100);
    EXPECT_TRUE(ConcurrentLockService::Create(options)
                    .status().IsInvalidArgument());
  }
  {
    ConcurrentServiceOptions options;
    options.detection_threads = 2;
    EXPECT_TRUE(ConcurrentLockService::Create(options)
                    .status().IsInvalidArgument());
  }
  {
    ConcurrentServiceOptions options;  // defaults: continuous, one shard
    auto service = ConcurrentLockService::Create(options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ((*service)->num_shards(), 1u);
  }
}

TEST(ConcurrentServiceCreateTest, PeriodicShardedBasics) {
  ConcurrentServiceOptions options;
  options.num_shards = 4;
  options.detection_mode = DetectionMode::kPeriodic;
  auto service = ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ConcurrentLockService& s = **service;
  EXPECT_EQ(s.num_shards(), 4u);
  EXPECT_EQ(s.snapshot_epoch(), 0u);

  lock::TransactionId t1 = *s.Begin();
  lock::TransactionId t2 = *s.Begin();
  EXPECT_TRUE(s.AcquireBlocking(t1, 1, kX).ok());
  EXPECT_TRUE(s.AcquireBlocking(t1, 2, kS).ok());
  EXPECT_TRUE(s.AcquireBlocking(t2, 3, kX).ok());
  EXPECT_TRUE(s.AcquireBlocking(t2, 2, kS).ok());  // shared: both granted

  // Deadlock-free table: a manual pass resolves nothing but advances the
  // snapshot epoch and records its pause.
  core::ResolutionReport report = s.RunDetectionPass();
  EXPECT_TRUE(report.aborted.empty());
  EXPECT_EQ(s.snapshot_epoch(), 1u);
  EXPECT_EQ(s.pause_times_ns().size(), 1u);

  EXPECT_TRUE(s.Commit(t1).ok());
  EXPECT_TRUE(s.Abort(t2).ok());
  EXPECT_EQ(*s.State(t1), TxnState::kCommitted);
  EXPECT_EQ(*s.State(t2), TxnState::kAborted);
  EXPECT_TRUE(s.State(99).status().IsNotFound());
  EXPECT_TRUE(s.Commit(t1).IsFailedPrecondition());
  EXPECT_TRUE(s.AcquireBlocking(t2, 5, kX).IsFailedPrecondition());

  uint64_t total_ops = 0;
  for (size_t shard = 0; shard < s.num_shards(); ++shard) {
    total_ops += s.shard_stats(shard).ops;
  }
  EXPECT_GT(total_ops, 0u);
}

TEST(ConcurrentServiceCreateTest, PeriodicCrossDeadlockResolvedByThread) {
  // Same certain cross-deadlock as the continuous test above, but nobody
  // calls RunDetectionPass: the dedicated detector thread must find and
  // resolve it, or both workers hang forever.
  ConcurrentServiceOptions options;
  options.num_shards = 8;
  options.detection_mode = DetectionMode::kPeriodic;
  options.detection_period = std::chrono::microseconds(500);
  options.detection_threads = 2;
  auto service = ConcurrentLockService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ConcurrentLockService& s = **service;

  std::barrier rendezvous(2);
  std::atomic<int> victims{0};
  std::atomic<int> commits{0};
  auto runner = [&](lock::ResourceId first, lock::ResourceId second) {
    lock::TransactionId t = *s.Begin();
    ASSERT_TRUE(s.AcquireBlocking(t, first, kX).ok());
    rendezvous.arrive_and_wait();
    Status status = s.AcquireBlocking(t, second, kX);
    if (status.IsAborted()) {
      ++victims;
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(s.Commit(t).ok());
    ++commits;
  };
  std::thread a(runner, 1, 2);
  std::thread b(runner, 2, 1);
  a.join();
  b.join();
  EXPECT_EQ(victims.load(), 1);
  EXPECT_EQ(commits.load(), 1);
  EXPECT_EQ(s.deadlock_victims(), 1u);
  EXPECT_GE(s.snapshot_epoch(), 1u);
}

}  // namespace
}  // namespace twbg::txn
