#!/usr/bin/env python3
"""Check that relative markdown links and heading anchors resolve.

Run by the `docs` CI job over README.md and docs/ (see
.github/workflows/ci.yml); usable locally from the repository root:

    $ python3 tools/check_doc_links.py README.md docs

For every inline link `[text](target)` in the given markdown files (and,
for directory arguments, every *.md below them):

  * http(s)/mailto links are skipped (no network in CI);
  * a relative path must exist on disk, resolved against the linking
    file's directory;
  * a `#fragment` must match a heading anchor in the target file
    (GitHub-style slugs: lowercase, punctuation stripped, spaces to
    hyphens), or in the linking file itself for bare `#fragment` links.

Exits non-zero listing every unresolved link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm: strip markup, lowercase, drop
    punctuation, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[*_]", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_lines(path: Path):
    """Lines of `path` with fenced code blocks blanked out, so links and
    headings inside examples are not checked."""
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            yield ""
            continue
        yield "" if in_fence else line


def anchors_of(path: Path) -> set:
    anchors = set()
    for line in markdown_lines(path):
        match = HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(1))
            # Repeated headings get -1, -2, ... suffixes on GitHub; accept
            # the base slug for every occurrence (collisions are rare and
            # a wrong suffix still lands on a real heading).
            anchors.add(slug)
    return anchors


def check_file(path: Path, repo_root: Path, anchor_cache: dict) -> list:
    problems = []
    for lineno, line in enumerate(markdown_lines(path), start=1):
        # Inline code spans may contain `[x](y)`-shaped text; blank them.
        line = re.sub(r"`[^`]*`", "", line)
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if EXTERNAL_RE.match(target):
                continue  # http(s), mailto, etc.
            target, _, fragment = target.partition("#")
            if target:
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(repo_root)}:{lineno}: "
                        f"broken link: {target}")
                    continue
            else:
                resolved = path.resolve()
            if fragment:
                if resolved.suffix.lower() != ".md" or resolved.is_dir():
                    continue  # anchors into non-markdown are not checked
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    problems.append(
                        f"{path.relative_to(repo_root)}:{lineno}: "
                        f"no heading for anchor "
                        f"#{fragment} in {resolved.name}")
    return problems


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo_root = Path.cwd().resolve()
    files = []
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    problems = []
    anchor_cache = {}
    for path in files:
        problems.extend(check_file(path.resolve(), repo_root, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
