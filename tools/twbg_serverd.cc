// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// twbg-serverd — the network lock-service daemon: a periodic-engine
// ConcurrentLockService behind the net::Server TCP front end.
//
//   twbg-serverd --port=7762 --shards=8 --period-us=2000
//
// Signals: the first SIGTERM/SIGINT starts a graceful drain (stop
// accepting, reject new Begins, let in-flight transactions finish for
// --drain-ms, then abort stragglers); a second signal forces immediate
// shutdown.  Exit code 0 after a clean drain.
//
// See docs/SERVICE.md for the wire protocol and operational notes.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"
#include "txn/concurrent_service.h"

namespace {

constexpr const char* kUsage = R"(usage: twbg-serverd [options]

  --host=ADDR        listen address                    (default 127.0.0.1)
  --port=N           listen port; 0 picks ephemeral    (default 7762)
  --shards=N         lock-table shards, 1..64          (default 4)
  --period-us=N      detection period, microseconds    (default 2000)
  --detect-threads=N parallel-pass worker threads      (default 0 = inline)
  --workers=N        request worker threads            (default 2)
  --max-sessions=N   accepted-connection cap           (default 4096)
  --max-inflight=N   per-session unanswered-request cap (default 64)
  --drain-ms=N       graceful-drain deadline, ms       (default 2000)
  --stop-the-world   snapshot via global pause instead of epoch deltas
  --help             print this and exit
)";

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

// One matcher per flag: returns the value part of --name=value.
const char* FlagValue(const char* arg, const char* name) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return nullptr;
  return arg + len + 1;
}

}  // namespace

int main(int argc, char** argv) {
  using twbg::net::Server;
  using twbg::net::ServerOptions;
  using twbg::txn::ConcurrentLockService;
  using twbg::txn::ConcurrentServiceOptions;
  using twbg::txn::DetectionMode;
  using twbg::txn::SnapshotStrategy;

  ServerOptions server_options;
  server_options.port = 7762;
  ConcurrentServiceOptions service_options;
  service_options.detection_mode = DetectionMode::kPeriodic;
  service_options.num_shards = 4;
  service_options.detection_period = std::chrono::microseconds(2000);

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (const char* v = FlagValue(arg, "--host")) {
      server_options.host = v;
    } else if (const char* v = FlagValue(arg, "--port")) {
      if (!ParseU64(v, &n) || n > 65535) goto bad_flag;
      server_options.port = static_cast<uint16_t>(n);
    } else if (const char* v = FlagValue(arg, "--shards")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      service_options.num_shards = n;
    } else if (const char* v = FlagValue(arg, "--period-us")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      service_options.detection_period = std::chrono::microseconds(n);
    } else if (const char* v = FlagValue(arg, "--detect-threads")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      service_options.detection_threads = n;
    } else if (const char* v = FlagValue(arg, "--workers")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      server_options.worker_threads = n;
    } else if (const char* v = FlagValue(arg, "--max-sessions")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      server_options.max_sessions = n;
    } else if (const char* v = FlagValue(arg, "--max-inflight")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      server_options.max_inflight_per_session = n;
    } else if (const char* v = FlagValue(arg, "--drain-ms")) {
      if (!ParseU64(v, &n)) goto bad_flag;
      server_options.drain_deadline = std::chrono::milliseconds(n);
    } else if (std::strcmp(arg, "--stop-the-world") == 0) {
      service_options.snapshot_strategy = SnapshotStrategy::kStopTheWorld;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n%s", arg, kUsage);
      return 2;
    }
    continue;
  bad_flag:
    std::fprintf(stderr, "bad value for '%s'\n%s", arg, kUsage);
    return 2;
  }

  // Block the shutdown signals in every thread the daemon will spawn,
  // then collect them synchronously with sigwait — no async handlers.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto service = ConcurrentLockService::Create(service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  auto server = Server::Create(server_options, service->get());
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  if (twbg::Status started = (*server)->Start(); !started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("twbg-serverd listening on %s:%u (shards=%zu period=%lldus)\n",
              server_options.host.c_str(), (*server)->port(),
              service_options.num_shards,
              static_cast<long long>(service_options.detection_period.count()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("signal %d: draining (deadline %lldms)\n", sig,
              static_cast<long long>(server_options.drain_deadline.count()));
  std::fflush(stdout);
  (*server)->BeginDrain();

  // A second signal while draining forces an immediate stop.
  std::atomic<bool> drained{false};
  std::thread force([&] {
    timespec poll{0, 50 * 1000 * 1000};
    while (!drained.load(std::memory_order_acquire)) {
      siginfo_t info;
      if (sigtimedwait(&signals, &info, &poll) > 0) {
        std::fprintf(stderr, "second signal: forcing shutdown\n");
        (*server)->Stop();
        return;
      }
    }
  });
  (*server)->Join();
  drained.store(true, std::memory_order_release);
  force.join();

  const twbg::net::ServerStats stats = (*server)->stats();
  std::printf(
      "drained: %llu sessions served, %llu requests, %llu responses, "
      "%llu orphan aborts\n",
      static_cast<unsigned long long>(stats.sessions_total),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.responses),
      static_cast<unsigned long long>(stats.orphan_aborts));
  return 0;
}
