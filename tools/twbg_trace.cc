// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "tools/twbg_trace.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/flat_map.h"
#include "common/string_util.h"
#include "obs/event.h"
#include "obs/span_sinks.h"
#include "obs/trace_reader.h"

namespace twbg::tools {
namespace {

using obs::Event;
using obs::EventKind;

// One reconstructed wait span: kLockBlock (or blocked kLockConvert)
// through its kLockWakeup / kTxnAbort, with the driver-measured duration
// from kWaitEnd when present.
struct SpanRecord {
  uint64_t span = 0;
  lock::TransactionId tid = 0;
  lock::ResourceId rid = 0;
  lock::LockMode mode = lock::LockMode::kNL;
  uint64_t start = 0;
  std::optional<uint64_t> end;       // nullopt: still open at end of trace
  bool aborted = false;              // closed by kTxnAbort, not a grant
  std::optional<double> wait_ticks;  // from kWaitEnd
};

// Replays the trace's lock events into per-span records, in open order.
std::vector<SpanRecord> ReconstructSpans(const std::vector<Event>& events) {
  std::vector<SpanRecord> spans;
  std::map<uint64_t, size_t> open;                 // span id -> index
  std::map<lock::TransactionId, uint64_t> by_tid;  // tid -> open span id
  for (const Event& event : events) {
    switch (event.kind) {
      case EventKind::kLockBlock:
      case EventKind::kLockConvert: {
        if (event.span == 0) break;  // granted conversion: no wait
        SpanRecord record;
        record.span = event.span;
        record.tid = event.tid;
        record.rid = event.rid;
        record.mode = event.mode;
        record.start = event.time;
        open[event.span] = spans.size();
        by_tid[event.tid] = event.span;
        spans.push_back(record);
        break;
      }
      case EventKind::kLockWakeup:
      case EventKind::kTxnAbort:
      case EventKind::kLockRelease: {
        // kLockRelease also closes: a waiter whose locks are all released
        // (a detector-aborted victim below the transaction layer) never
        // gets a wakeup.
        auto tid_it = by_tid.find(event.tid);
        if (tid_it == by_tid.end()) break;
        auto it = open.find(tid_it->second);
        if (it != open.end()) {
          spans[it->second].end = event.time;
          spans[it->second].aborted =
              event.kind != EventKind::kLockWakeup;
          open.erase(it);
        }
        by_tid.erase(tid_it);
        break;
      }
      case EventKind::kWaitEnd: {
        // The span is already closed by its wakeup; attach the measured
        // duration wherever the id matches.
        for (auto rit = spans.rbegin(); rit != spans.rend(); ++rit) {
          if (rit->span == event.span) {
            rit->wait_ticks = event.value;
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return spans;
}

std::string SpanLine(const SpanRecord& s) {
  std::string out = common::Format(
      "span %llu: T%u blocked %s on R%u @t=%llu",
      static_cast<unsigned long long>(s.span), s.tid,
      std::string(obs::LockModeName(s.mode)).c_str(), s.rid,
      static_cast<unsigned long long>(s.start));
  if (!s.end.has_value()) {
    out += "  [still waiting at end of trace]";
  } else {
    out += common::Format(
        " -> %s @t=%llu (%llut)", s.aborted ? "aborted" : "granted",
        static_cast<unsigned long long>(*s.end),
        static_cast<unsigned long long>(*s.end - s.start));
  }
  if (s.wait_ticks.has_value()) {
    out += common::Format(" wait=%.0ft", *s.wait_ticks);
  }
  return out;
}

// Percentile over an unsorted sample (nearest-rank); sorts a copy.
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

void AppendLatencyRow(std::string* out, const char* name,
                      const std::vector<double>& values, const char* unit) {
  if (values.empty()) {
    *out += common::Format("  %-18s (no samples)\n", name);
    return;
  }
  double sum = 0.0, max = values[0];
  for (double v : values) {
    sum += v;
    max = std::max(max, v);
  }
  *out += common::Format(
      "  %-18s n=%zu mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f %s\n",
      name, values.size(), sum / static_cast<double>(values.size()),
      Percentile(values, 50), Percentile(values, 90), Percentile(values, 99),
      max, unit);
}

// Per-kind event counts, skipping zero rows.
void AppendKindCounts(std::string* out, const std::vector<Event>& events) {
  uint64_t counts[obs::kNumEventKinds] = {};
  for (const Event& event : events) {
    ++counts[static_cast<size_t>(event.kind)];
  }
  for (size_t i = 0; i < obs::kNumEventKinds; ++i) {
    if (counts[i] == 0) continue;
    *out += common::Format(
        "  %-18s %llu\n",
        std::string(obs::ToString(static_cast<EventKind>(i))).c_str(),
        static_cast<unsigned long long>(counts[i]));
  }
}

int CmdSummary(const std::vector<Event>& events, std::string* out) {
  *out += common::Format("%zu event(s)", events.size());
  if (!events.empty()) {
    *out += common::Format(
        ", t=%llu..%llu", static_cast<unsigned long long>(events.front().time),
        static_cast<unsigned long long>(events.back().time));
  }
  *out += "\n";
  AppendKindCounts(out, events);
  const std::vector<SpanRecord> spans = ReconstructSpans(events);
  size_t open = 0, aborted = 0;
  for (const SpanRecord& s : spans) {
    if (!s.end.has_value()) {
      ++open;
    } else if (s.aborted) {
      ++aborted;
    }
  }
  *out += common::Format(
      "wait spans: %zu opened, %zu granted, %zu aborted, %zu still open\n",
      spans.size(), spans.size() - open - aborted, aborted, open);
  size_t tdr2 = 0, cycles = 0;
  for (const Event& event : events) {
    if (event.kind != EventKind::kCycleResolved) continue;
    ++cycles;
    tdr2 += event.b;
  }
  *out += common::Format(
      "resolutions: %zu cycle(s), %zu by TDR-2 repositioning, %zu by "
      "TDR-1 abort\n",
      cycles, tdr2, cycles - tdr2);
  return 0;
}

int CmdChains(const std::vector<Event>& events, std::string* out) {
  const std::vector<SpanRecord> spans = ReconstructSpans(events);
  *out += common::Format("%zu wait span(s):\n", spans.size());
  for (const SpanRecord& s : spans) {
    *out += "  ";
    *out += SpanLine(s);
    *out += "\n";
  }
  // Active chains at end of trace: open spans grouped per resource.
  common::FlatMap<lock::ResourceId, std::vector<const SpanRecord*>> waiting;
  for (const SpanRecord& s : spans) {
    if (!s.end.has_value()) waiting[s.rid].push_back(&s);
  }
  if (!waiting.empty()) {
    *out += "open waits by resource:\n";
    // The accumulator iterates in hash-table order; the report contract
    // is ascending rid, so sort explicitly at the output boundary.
    std::vector<lock::ResourceId> rids;
    rids.reserve(waiting.size());
    for (const auto& entry : waiting.entries()) rids.push_back(entry.key);
    std::sort(rids.begin(), rids.end());
    for (lock::ResourceId rid : rids) {
      std::vector<std::string> names;
      for (const SpanRecord* s : *waiting.Find(rid)) {
        names.push_back(common::Format("T%u(span=%llu)", s->tid,
                                       static_cast<unsigned long long>(
                                           s->span)));
      }
      *out += common::Format("  R%u <- %s\n", rid,
                             common::Join(names, ", ").c_str());
    }
  }
  size_t cycles = 0;
  for (const Event& event : events) {
    if (event.kind != EventKind::kCyclePostMortem) continue;
    ++cycles;
    *out += common::Format(
        "cycle %zu resolved @t=%llu (junction T%u%s): %s\n", cycles,
        static_cast<unsigned long long>(event.time), event.tid,
        event.b != 0 ? common::Format(", repositioned R%u", event.rid).c_str()
                     : "",
        event.detail.c_str());
  }
  if (cycles == 0) *out += "no resolved cycles in this trace\n";
  return 0;
}

int CmdHot(const std::vector<Event>& events, size_t top_k, std::string* out) {
  struct Contention {
    size_t blocked_spans = 0;
    size_t open = 0;
    uint64_t queued_ticks = 0;
    uint64_t max_queued = 0;
    size_t repositions = 0;
  };
  common::FlatMap<lock::ResourceId, Contention> per_rid;
  const uint64_t horizon = events.empty() ? 0 : events.back().time;
  for (const SpanRecord& s : ReconstructSpans(events)) {
    Contention& c = per_rid[s.rid];
    ++c.blocked_spans;
    const uint64_t queued = (s.end.has_value() ? *s.end : horizon) - s.start;
    c.queued_ticks += queued;
    c.max_queued = std::max(c.max_queued, queued);
    if (!s.end.has_value()) ++c.open;
  }
  for (const Event& event : events) {
    if (event.kind == EventKind::kUprReposition) {
      ++per_rid[event.rid].repositions;
    }
  }
  std::vector<std::pair<lock::ResourceId, Contention>> rows;
  rows.reserve(per_rid.size());
  for (const auto& entry : per_rid.entries()) {
    rows.emplace_back(entry.key, entry.value);
  }
  // The accumulator iterates in hash-table order; the ranking below ties
  // every comparison off to ascending rid, so the output is deterministic
  // regardless of accumulation order.
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.blocked_spans != b.second.blocked_spans) {
      return a.second.blocked_spans > b.second.blocked_spans;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_k) rows.resize(top_k);
  *out += common::Format("top %zu resource(s) by blocked wait spans:\n",
                         rows.size());
  for (const auto& [rid, c] : rows) {
    *out += common::Format(
        "  R%-6u spans=%zu open=%zu queued=%llut max=%llut tdr2=%zu\n", rid,
        c.blocked_spans, c.open,
        static_cast<unsigned long long>(c.queued_ticks),
        static_cast<unsigned long long>(c.max_queued), c.repositions);
  }
  return 0;
}

int CmdLatency(const std::vector<Event>& events, std::string* out) {
  std::vector<double> waits, passes, step1, step2;
  for (const Event& event : events) {
    switch (event.kind) {
      case EventKind::kWaitEnd: waits.push_back(event.value); break;
      case EventKind::kPassEnd: passes.push_back(event.value); break;
      case EventKind::kStep1: step1.push_back(event.value); break;
      case EventKind::kStep2: step2.push_back(event.value); break;
      default: break;
    }
  }
  *out += "latency percentiles:\n";
  AppendLatencyRow(out, "wait_time", waits, "ticks");
  AppendLatencyRow(out, "pass_duration", passes, "ns");
  AppendLatencyRow(out, "step1_duration", step1, "ns");
  AppendLatencyRow(out, "step2_duration", step2, "ns");
  return 0;
}

int CmdDiff(const std::vector<Event>& a, const std::vector<Event>& b,
            std::string* out) {
  uint64_t counts_a[obs::kNumEventKinds] = {};
  uint64_t counts_b[obs::kNumEventKinds] = {};
  for (const Event& event : a) ++counts_a[static_cast<size_t>(event.kind)];
  for (const Event& event : b) ++counts_b[static_cast<size_t>(event.kind)];
  *out += common::Format("%-18s %10s %10s %10s\n", "kind", "A", "B", "delta");
  *out += common::Format("%-18s %10zu %10zu %+10lld\n", "(events)", a.size(),
                         b.size(),
                         static_cast<long long>(b.size()) -
                             static_cast<long long>(a.size()));
  for (size_t i = 0; i < obs::kNumEventKinds; ++i) {
    if (counts_a[i] == 0 && counts_b[i] == 0) continue;
    *out += common::Format(
        "%-18s %10llu %10llu %+10lld\n",
        std::string(obs::ToString(static_cast<EventKind>(i))).c_str(),
        static_cast<unsigned long long>(counts_a[i]),
        static_cast<unsigned long long>(counts_b[i]),
        static_cast<long long>(counts_b[i]) -
            static_cast<long long>(counts_a[i]));
  }
  auto waits = [](const std::vector<Event>& events) {
    std::vector<double> out;
    for (const Event& event : events) {
      if (event.kind == EventKind::kWaitEnd) out.push_back(event.value);
    }
    return out;
  };
  const std::vector<double> wa = waits(a), wb = waits(b);
  *out += common::Format(
      "wait p50: %.1f -> %.1f ticks; wait p99: %.1f -> %.1f ticks\n",
      Percentile(wa, 50), Percentile(wb, 50), Percentile(wa, 99),
      Percentile(wb, 99));
  return 0;
}

// Loads `path`, reporting failures to `*err` with exit code 2.
int Load(const std::string& path, std::vector<Event>* events,
         std::string* err) {
  Result<std::vector<Event>> trace = obs::ReadTraceFile(path);
  if (!trace.ok()) {
    *err += std::string(trace.status().message());
    *err += "\n";
    return 2;
  }
  *events = std::move(trace).value();
  return 0;
}

// Loads a span JSONL file (the --spans-out stream), exit code 2 on error.
int LoadSpans(const std::string& path, std::vector<obs::Span>* spans,
              std::string* err) {
  Result<std::vector<obs::Span>> file = obs::ReadSpanFile(path);
  if (!file.ok()) {
    *err += std::string(file.status().message());
    *err += "\n";
    return 2;
  }
  *spans = std::move(file).value();
  return 0;
}

int CmdExportPerfetto(const std::vector<obs::Span>& spans, std::string* out) {
  *out += obs::ExportPerfettoJson(spans);
  return 0;
}

int CmdProfile(const std::vector<obs::Span>& spans, bool folded,
               std::string* out) {
  const obs::BlockedProfile profile = obs::BuildBlockedProfile(spans);
  *out += folded ? obs::FoldedStacks(profile) : obs::ProfileTable(profile);
  return 0;
}

constexpr char kUsage[] =
    "usage: twbg-trace <command> <trace.jsonl> [...]\n"
    "  summary <trace>        event counts, span and resolution totals\n"
    "  chains <trace>         wait-chain + cycle post-mortem reconstruction\n"
    "  hot <trace> [--top=K]  per-resource contention top-K\n"
    "  latency <trace>        wait/pass duration percentile tables\n"
    "  diff <a> <b>           compare two traces\n"
    "span commands (causal span JSONL, e.g. quickstart --spans-out):\n"
    "  export-perfetto <spans>    Chrome/Perfetto trace-event JSON\n"
    "  profile <spans> [--folded] blocked-time profile (table or\n"
    "                             collapsed stacks)\n";

}  // namespace

int RunTraceTool(const std::vector<std::string>& args, std::string* out,
                 std::string* err) {
  if (args.empty()) {
    *err += kUsage;
    return 1;
  }
  const std::string& cmd = args[0];
  if (cmd == "diff") {
    if (args.size() != 3) {
      *err += kUsage;
      return 1;
    }
    std::vector<Event> a, b;
    if (int rc = Load(args[1], &a, err); rc != 0) return rc;
    if (int rc = Load(args[2], &b, err); rc != 0) return rc;
    return CmdDiff(a, b, out);
  }
  if (cmd == "export-perfetto" || cmd == "profile") {
    if (args.size() < 2) {
      *err += kUsage;
      return 1;
    }
    bool folded = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (cmd == "profile" && args[i] == "--folded") {
        folded = true;
      } else {
        *err += common::Format("unknown option '%s'\n", args[i].c_str());
        return 1;
      }
    }
    std::vector<obs::Span> spans;
    if (int rc = LoadSpans(args[1], &spans, err); rc != 0) return rc;
    if (cmd == "export-perfetto") return CmdExportPerfetto(spans, out);
    return CmdProfile(spans, folded, out);
  }
  if (cmd != "summary" && cmd != "chains" && cmd != "hot" &&
      cmd != "latency") {
    *err += common::Format("unknown command '%s'\n", cmd.c_str());
    *err += kUsage;
    return 1;
  }
  if (args.size() < 2) {
    *err += kUsage;
    return 1;
  }
  size_t top_k = 10;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i].rfind("--top=", 0) == 0) {
      top_k = static_cast<size_t>(
          std::strtoull(args[i].c_str() + 6, nullptr, 10));
      if (top_k == 0) top_k = 1;
    } else {
      *err += common::Format("unknown option '%s'\n", args[i].c_str());
      return 1;
    }
  }
  std::vector<Event> events;
  if (int rc = Load(args[1], &events, err); rc != 0) return rc;
  if (cmd == "summary") return CmdSummary(events, out);
  if (cmd == "chains") return CmdChains(events, out);
  if (cmd == "hot") return CmdHot(events, top_k, out);
  return CmdLatency(events, out);
}

}  // namespace twbg::tools
