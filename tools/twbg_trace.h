// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// twbg-trace: offline analyzer for the JSONL event traces written by
// `--trace-out` (obs::JsonlSink).  The CLI logic lives in this small
// library so the integration tests can drive it in-process and assert on
// its output; tools/twbg_trace_main.cc is the thin binary wrapper.
//
// Subcommands:
//   summary <trace>           event counts, span totals, resolution totals
//   chains <trace>            wait-chain reconstruction: every wait span
//                             (block -> wakeup/abort) and, per resolved
//                             cycle, the post-mortem replay (chain + rule
//                             + rationale)
//   hot <trace> [--top=K]     per-resource contention: blocked spans,
//                             total/max queue time, top-K by blocked spans
//   latency <trace>           percentile tables (p50/p90/p99/max) for
//                             wait times and pass/step durations
//   diff <a> <b>              side-by-side comparison of two traces
//                             (event counts, wait latency, resolutions)
//
// Span subcommands (causal span JSONL from obs::SpanJsonlSink, e.g. the
// quickstart's --spans-out flag — a separate stream from the event
// trace):
//   export-perfetto <spans>   Chrome/Perfetto trace-event JSON on stdout
//                             (load in ui.perfetto.dev or chrome://tracing)
//   profile <spans> [--folded]
//                             blocked-time profile folded from closed wait
//                             spans; --folded emits collapsed-stack lines
//                             for flamegraph.pl / speedscope instead of
//                             the aggregate table
//
// Exit codes (pinned by tests/trace_tool_test.cc): 0 success, 1 bad usage
// (unknown subcommand — named in the diagnostic — or bad arguments), 2 a
// trace/span file that cannot be read or parsed.

#ifndef TWBG_TOOLS_TWBG_TRACE_H_
#define TWBG_TOOLS_TWBG_TRACE_H_

#include <string>
#include <vector>

namespace twbg::tools {

/// Runs the twbg-trace CLI on `args` (argv[1..] — subcommand first),
/// appending normal output to `*out` and diagnostics to `*err`.  Returns
/// the process exit code: 0 on success, 1 on bad usage, 2 on a trace that
/// cannot be read or parsed.
int RunTraceTool(const std::vector<std::string>& args, std::string* out,
                 std::string* err);

}  // namespace twbg::tools

#endif  // TWBG_TOOLS_TWBG_TRACE_H_
