// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Binary entry point for the twbg-trace offline analyzer; the actual
// logic lives in tools/twbg_trace.{h,cc} so tests can run it in-process.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/twbg_trace.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out, err;
  const int rc = twbg::tools::RunTraceTool(args, &out, &err);
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  if (!err.empty()) std::fputs(err.c_str(), stderr);
  return rc;
}
