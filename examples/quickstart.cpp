// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Quickstart: build the paper's Example 5.1 deadlock through the lock
// manager, inspect the H/W-TWBG, and resolve it with one periodic
// detection-resolution pass.
//
//   $ ./quickstart
//   $ ./quickstart --trace-out=events.jsonl   # also stream structured
//                                             # events as JSON lines
//   $ ./quickstart --spans-out=spans.jsonl    # also record causal spans
//                                             # (twbg-trace export-perfetto /
//                                             #  profile read this stream)
//
// See docs/OBSERVABILITY.md for the event and span schemas.

#include <cstdio>
#include <cstring>
#include <memory>

#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"
#include "obs/bus.h"
#include "obs/sinks.h"
#include "obs/span.h"
#include "obs/span_sinks.h"

int main(int argc, char** argv) {
  using namespace twbg;

  // 0. Optional observability: with --trace-out=<file>, attach a JSONL
  //    sink to an event bus shared by the lock manager and the detector.
  obs::EventBus bus;
  std::unique_ptr<obs::JsonlSink> jsonl;
  obs::SpanTracer tracer;
  std::unique_ptr<obs::SpanJsonlSink> span_jsonl;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      Result<std::unique_ptr<obs::JsonlSink>> sink =
          obs::JsonlSink::Open(argv[i] + 12);
      if (!sink.ok()) {
        std::fprintf(stderr, "error: %s\n", sink.status().ToString().c_str());
        return 1;
      }
      jsonl = std::move(*sink);
      bus.Subscribe(jsonl.get());
    } else if (std::strncmp(argv[i], "--spans-out=", 12) == 0) {
      Result<std::unique_ptr<obs::SpanJsonlSink>> sink =
          obs::SpanJsonlSink::Open(argv[i] + 12);
      if (!sink.ok()) {
        std::fprintf(stderr, "error: %s\n", sink.status().ToString().c_str());
        return 1;
      }
      span_jsonl = std::move(*sink);
      tracer.Subscribe(span_jsonl.get());
    }
  }

  // 1. Drive the lock manager into the Example 5.1 state: T1, T2, T3
  //    deadlock across two resources (two overlapping cycles).
  lock::LockManager manager;
  manager.set_event_bus(&bus);
  manager.set_span_tracer(&tracer);
  if (tracer.active()) {
    for (lock::TransactionId tid : {1, 2, 3}) tracer.OpenTxn(tid, "quickstart");
  }
  core::BuildExample51(manager);

  std::printf("Lock table before detection:\n%s\n",
              manager.table().ToString().c_str());

  // 2. The H/W-TWBG captures the precise wait state, including the FIFO
  //    wait T2 -> T3 a classic wait-for graph would miss.
  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  std::printf("H/W-TWBG edges:\n%s\n", graph.ToString().c_str());
  std::printf("Deadlocked? %s\n\n", graph.HasCycle() ? "yes" : "no");

  // 3. Costs drive victim selection (the paper's run: 6 / 4 / 1).
  core::CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);

  // 4. One periodic pass detects both cycles, aborts T2 and spares T3.
  core::DetectorOptions options;
  options.event_bus = &bus;
  options.span_tracer = &tracer;
  core::PeriodicDetector detector(options);
  core::ResolutionReport report = detector.RunPass(manager, costs);
  std::printf("Resolution report:\n%s\n", report.ToString().c_str());

  std::printf("Lock table after resolution:\n%s\n",
              manager.table().ToString().c_str());
  std::printf("Deadlocked now? %s\n",
              core::HwTwbg::Build(manager.table()).HasCycle() ? "yes" : "no");
  if (jsonl != nullptr) {
    jsonl->Flush();
    std::printf("wrote %llu event(s) to %s\n",
                static_cast<unsigned long long>(jsonl->lines_written()),
                jsonl->path().c_str());
  }
  if (span_jsonl != nullptr) {
    // Survivors commit; resolution victims close aborted.
    for (lock::TransactionId tid : {1, 2, 3}) {
      bool aborted = false;
      for (const core::VictimDecision& d : report.decisions) {
        if (d.victim().kind == core::VictimKind::kAbort &&
            d.victim().junction == tid) {
          aborted = true;
        }
      }
      tracer.CloseTxn(tid, aborted);
    }
    span_jsonl->Flush();
    std::printf("wrote %llu span(s) to %s\n",
                static_cast<unsigned long long>(span_jsonl->lines_written()),
                span_jsonl->path().c_str());
  }
  return 0;
}
