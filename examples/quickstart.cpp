// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Quickstart: build the paper's Example 5.1 deadlock through the lock
// manager, inspect the H/W-TWBG, and resolve it with one periodic
// detection-resolution pass.
//
//   $ ./quickstart

#include <cstdio>

#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

int main() {
  using namespace twbg;

  // 1. Drive the lock manager into the Example 5.1 state: T1, T2, T3
  //    deadlock across two resources (two overlapping cycles).
  lock::LockManager manager;
  core::BuildExample51(manager);

  std::printf("Lock table before detection:\n%s\n",
              manager.table().ToString().c_str());

  // 2. The H/W-TWBG captures the precise wait state, including the FIFO
  //    wait T2 -> T3 a classic wait-for graph would miss.
  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  std::printf("H/W-TWBG edges:\n%s\n", graph.ToString().c_str());
  std::printf("Deadlocked? %s\n\n", graph.HasCycle() ? "yes" : "no");

  // 3. Costs drive victim selection (the paper's run: 6 / 4 / 1).
  core::CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);

  // 4. One periodic pass detects both cycles, aborts T2 and spares T3.
  core::PeriodicDetector detector;
  core::ResolutionReport report = detector.RunPass(manager, costs);
  std::printf("Resolution report:\n%s\n", report.ToString().c_str());

  std::printf("Lock table after resolution:\n%s\n",
              manager.table().ToString().c_str());
  std::printf("Deadlocked now? %s\n",
              core::HwTwbg::Build(manager.table()).HasCycle() ? "yes" : "no");
  return 0;
}
