// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Multiple-granularity locking demo: a db / area / file / record
// hierarchy, intention locks taken top-down, a coarse S lock blocking a
// fine-grained writer, and a hierarchical deadlock resolved by the
// continuous detector.
//
//   $ ./mgl_hierarchy

#include <cstdio>

#include "txn/mgl.h"

int main() {
  using namespace twbg;
  using enum lock::LockMode;

  // Hierarchy: db(1) -> area(10) -> file(100) -> records 1000..1004.
  txn::ResourceHierarchy hierarchy;
  (void)hierarchy.DeclareChild(1, 10);
  (void)hierarchy.DeclareChild(10, 100);
  for (lock::ResourceId record = 1000; record <= 1004; ++record) {
    (void)hierarchy.DeclareChild(100, record);
  }

  txn::TransactionManagerOptions options;
  options.detection_mode = txn::DetectionMode::kContinuous;
  txn::TransactionManager tm(options);
  txn::MglAcquirer mgl(&hierarchy, &tm);

  // Record-level writers coexist thanks to intention locks.
  lock::TransactionId t1 = *tm.Begin();
  lock::TransactionId t2 = *tm.Begin();
  std::printf("T%u locks record 1000 X: %s\n", t1,
              mgl.Lock(t1, 1000, kX).ok() ? "granted" : "blocked");
  std::printf("T%u locks record 1001 X: %s\n", t2,
              mgl.Lock(t2, 1001, kX).ok() ? "granted" : "blocked");
  std::printf("\nLock table (note IX intentions up the path):\n%s\n",
              tm.lock_manager().table().ToString().c_str());

  // A file-level scan (S on the file) must wait for both writers: their
  // IX intentions on the file conflict with S.
  lock::TransactionId scanner = *tm.Begin();
  Status scan = mgl.Lock(scanner, 100, kS);
  std::printf("T%u requests S on the whole file: %s\n", scanner,
              scan.IsWouldBlock() ? "blocked (writers active)" : "granted");

  (void)tm.Commit(t1);
  (void)tm.Commit(t2);
  std::printf("Writers committed; scanner state: %s\n",
              std::string(txn::ToString(*tm.State(scanner))).c_str());
  if (mgl.HasPendingPlan(scanner)) {
    Status resumed = mgl.Advance(scanner);
    std::printf("Scanner plan resumed: %s\n",
                resumed.ok() ? "granted" : "blocked");
  }
  (void)tm.Commit(scanner);

  // Hierarchical deadlock: two writers cross-upgrade into each other's
  // records; the continuous detector picks a victim at block time.
  std::printf("\n--- hierarchical deadlock ---\n");
  lock::TransactionId a = *tm.Begin();
  lock::TransactionId b = *tm.Begin();
  (void)mgl.Lock(a, 1002, kX);
  (void)mgl.Lock(b, 1003, kX);
  Status first = mgl.Lock(a, 1003, kS);
  std::printf("T%u requests record 1003 S: %s\n", a,
              first.IsWouldBlock() ? "blocked" : "granted");
  Status closing = mgl.Lock(b, 1002, kS);
  const char* verdict = "granted";
  if (closing.IsWouldBlock()) verdict = "blocked";
  if (closing.IsDeadlockVictim()) {
    verdict = "ABORTED as deadlock victim";
  }
  std::printf("T%u requests record 1002 S: %s\n", b, verdict);
  std::printf("T%u: %s, T%u: %s\n", a,
              std::string(txn::ToString(*tm.State(a))).c_str(), b,
              std::string(txn::ToString(*tm.State(b))).c_str());
  return 0;
}
