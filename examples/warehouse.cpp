// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Warehouse order processing: the multi-granularity workload the MGL
// protocol was designed for.  Inventory rows live under a
// warehouse/zone/shelf hierarchy; order pickers take X locks on rows
// (with IX intentions up the path), auditors scan whole zones with S
// locks, and a stock-transfer pair demonstrates a hierarchical deadlock
// resolved by the continuous detector.
//
//   $ ./warehouse

#include <cstdio>
#include <vector>

#include "txn/mgl.h"

namespace {

using namespace twbg;
using enum lock::LockMode;

// Resource ids: warehouse 1; zones 10+z; shelves 100+10z+s; items
// 1000+100z+10s+i.
constexpr lock::ResourceId kWarehouse = 1;
lock::ResourceId Zone(int z) { return 10 + static_cast<uint32_t>(z); }
lock::ResourceId Shelf(int z, int s) {
  return 100 + static_cast<uint32_t>(10 * z + s);
}
lock::ResourceId Item(int z, int s, int i) {
  return 1000 + static_cast<uint32_t>(100 * z + 10 * s + i);
}

const char* Name(const Status& status) {
  if (status.ok()) return "granted";
  if (status.IsWouldBlock()) return "blocked";
  if (status.IsDeadlockVictim()) return "ABORTED (victim)";
  return "?";
}

}  // namespace

int main() {
  txn::ResourceHierarchy hierarchy;
  for (int z = 0; z < 2; ++z) {
    (void)hierarchy.DeclareChild(kWarehouse, Zone(z));
    for (int s = 0; s < 2; ++s) {
      (void)hierarchy.DeclareChild(Zone(z), Shelf(z, s));
      for (int i = 0; i < 3; ++i) {
        (void)hierarchy.DeclareChild(Shelf(z, s), Item(z, s, i));
      }
    }
  }

  txn::TransactionManagerOptions options;
  options.detection_mode = txn::DetectionMode::kContinuous;
  options.cost_policy = txn::CostPolicy::kLocksHeld;
  txn::TransactionManager tm(options);
  txn::MglAcquirer mgl(&hierarchy, &tm);

  // Two pickers work different items of the same shelf concurrently.
  lock::TransactionId pick1 = *tm.Begin();
  lock::TransactionId pick2 = *tm.Begin();
  std::printf("picker %u locks item(0,0,0) X: %s\n", pick1,
              Name(mgl.Lock(pick1, Item(0, 0, 0), kX)));
  std::printf("picker %u locks item(0,0,1) X: %s\n", pick2,
              Name(mgl.Lock(pick2, Item(0, 0, 1), kX)));

  // An auditor scans zone 1 (no pickers there): granted immediately.
  lock::TransactionId audit1 = *tm.Begin();
  std::printf("auditor %u scans zone 1 (S): %s\n", audit1,
              Name(mgl.Lock(audit1, Zone(1), kS)));

  // A zone-0 audit must wait for both pickers (their IX intentions on the
  // zone conflict with S).
  lock::TransactionId audit0 = *tm.Begin();
  std::printf("auditor %u scans zone 0 (S): %s\n", audit0,
              Name(mgl.Lock(audit0, Zone(0), kS)));

  std::printf("\nLock table:\n%s\n",
              tm.lock_manager().table().ToString().c_str());

  // Pickers finish; the audit resumes and completes.
  (void)tm.Commit(pick1);
  (void)tm.Commit(pick2);
  if (mgl.HasPendingPlan(audit0)) (void)mgl.Advance(audit0);
  std::printf("pickers committed; auditor %u is %s\n\n", audit0,
              std::string(txn::ToString(*tm.State(audit0))).c_str());
  (void)tm.Commit(audit0);
  (void)tm.Commit(audit1);

  // Stock transfer deadlock: two transfers move stock between the same
  // two items in opposite directions.
  std::printf("--- crossing stock transfers ---\n");
  lock::TransactionId xfer_a = *tm.Begin();
  lock::TransactionId xfer_b = *tm.Begin();
  std::printf("transfer %u locks item(1,0,0): %s\n", xfer_a,
              Name(mgl.Lock(xfer_a, Item(1, 0, 0), kX)));
  std::printf("transfer %u locks item(1,1,0): %s\n", xfer_b,
              Name(mgl.Lock(xfer_b, Item(1, 1, 0), kX)));
  std::printf("transfer %u wants item(1,1,0): %s\n", xfer_a,
              Name(mgl.Lock(xfer_a, Item(1, 1, 0), kX)));
  Status closing = mgl.Lock(xfer_b, Item(1, 0, 0), kX);
  std::printf("transfer %u wants item(1,0,0): %s\n", xfer_b, Name(closing));

  const bool a_dead = *tm.State(xfer_a) == txn::TxnState::kAborted;
  std::printf("victim: transfer %u; survivor completes the move.\n",
              a_dead ? xfer_a : xfer_b);
  lock::TransactionId survivor = a_dead ? xfer_b : xfer_a;
  if (mgl.HasPendingPlan(survivor)) (void)mgl.Advance(survivor);
  (void)tm.Commit(survivor);
  std::printf("\nFinal lock table (empty = all released):\n%s",
              tm.lock_manager().table().ToString().c_str());
  return 0;
}
