// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Bank-transfer demo: the classic application-level deadlock.  Transfers
// lock the debit account then the credit account; two opposite transfers
// interleave and deadlock.  The transaction manager (continuous detection
// mode) resolves the cycle at block time; the aborted transfer retries
// and the books balance.
//
//   $ ./bank_transfer

#include <cstdio>
#include <map>
#include <vector>

#include "txn/transaction_manager.h"

namespace {

using namespace twbg;

struct Bank {
  std::map<lock::ResourceId, long> balances;  // account id -> cents
};

// One transfer attempt: X-lock both accounts (debit first), then move the
// money and commit.  Returns false when this transaction was chosen as a
// deadlock victim and must be retried.
bool TryTransfer(txn::TransactionManager& tm, Bank& bank,
                 lock::ResourceId from, lock::ResourceId to, long cents) {
  Result<lock::TransactionId> begin = tm.Begin();
  if (!begin.ok()) {
    std::printf("  Begin rejected: %s\n", begin.status().ToString().c_str());
    return false;
  }
  const lock::TransactionId t = *begin;
  for (lock::ResourceId account : {from, to}) {
    Status outcome = tm.Acquire(t, account, lock::LockMode::kX);
    if (outcome.IsDeadlockVictim()) {
      std::printf("  T%u chosen as deadlock victim while locking %u\n", t,
                  account);
      return false;
    }
    if (outcome.IsWouldBlock()) {
      // In this single-threaded demo a block that survives continuous
      // detection means we wait on a transaction that will never finish
      // here; the driver below never lets that happen.
      std::printf("  T%u blocked on account %u\n", t, account);
      return false;
    }
    if (!outcome.ok()) {
      std::printf("  T%u: %s\n", t, outcome.ToString().c_str());
      return false;
    }
  }
  bank.balances[from] -= cents;
  bank.balances[to] += cents;
  return tm.Commit(t).ok();
}

}  // namespace

int main() {
  using namespace twbg;

  txn::TransactionManagerOptions options;
  options.detection_mode = txn::DetectionMode::kContinuous;
  options.cost_policy = txn::CostPolicy::kLocksHeld;
  txn::TransactionManager tm(options);

  Bank bank;
  bank.balances[101] = 10'000;
  bank.balances[102] = 5'000;

  std::printf("Initial balances: A=%ld B=%ld\n", bank.balances[101],
              bank.balances[102]);

  // Interleave two opposite transfers by hand to force the deadlock:
  // T_a locks A, T_b locks B, then each requests the other's account.
  lock::TransactionId ta = *tm.Begin();
  lock::TransactionId tb = *tm.Begin();
  std::printf("\nT%u transfers A->B, T%u transfers B->A, interleaved:\n", ta,
              tb);
  (void)tm.Acquire(ta, 101, lock::LockMode::kX);
  (void)tm.Acquire(tb, 102, lock::LockMode::kX);
  Status a_wait = tm.Acquire(ta, 102, lock::LockMode::kX);
  std::printf("  T%u requests B: %s\n", ta,
              a_wait.IsWouldBlock() ? "blocked" : "granted");
  Status b_wait = tm.Acquire(tb, 101, lock::LockMode::kX);
  // tb's request closes the cycle; continuous detection fires here.
  const char* verdict = "granted";
  if (b_wait.IsWouldBlock()) verdict = "blocked";
  if (b_wait.IsDeadlockVictim()) verdict = "ABORTED (victim)";
  std::printf("  T%u requests A: %s\n", tb, verdict);

  auto report_state = [&](lock::TransactionId t) {
    std::printf("  T%u is %s\n", t,
                std::string(txn::ToString(*tm.State(t))).c_str());
  };
  report_state(ta);
  report_state(tb);

  // Finish whichever survived, retry the victim, then run a burst of
  // random-ish transfers to show steady-state behaviour.
  lock::TransactionId survivor = *tm.State(ta) == txn::TxnState::kActive
                                     ? ta
                                     : tb;
  if (survivor == ta) {
    bank.balances[101] -= 100;
    bank.balances[102] += 100;
  } else {
    bank.balances[102] -= 100;
    bank.balances[101] += 100;
  }
  (void)tm.Commit(survivor);
  std::printf("\nSurvivor T%u committed; retrying the victim...\n", survivor);

  int retries = 0;
  while (!TryTransfer(tm, bank, survivor == ta ? 102 : 101,
                      survivor == ta ? 101 : 102, 100)) {
    ++retries;
    if (retries > 3) break;
  }
  std::printf("Victim retried successfully after %d retr%s.\n", retries,
              retries == 1 ? "y" : "ies");

  std::printf("\nRunning 200 alternating transfers...\n");
  size_t committed = 0;
  size_t victim_retries = 0;
  for (int i = 0; i < 200; ++i) {
    lock::ResourceId from = (i % 2 == 0) ? 101 : 102;
    lock::ResourceId to = (i % 2 == 0) ? 102 : 101;
    while (!TryTransfer(tm, bank, from, to, 25)) ++victim_retries;
    ++committed;
  }
  std::printf("Committed %zu transfers (%zu deadlock retries).\n", committed,
              victim_retries);
  std::printf("Final balances: A=%ld B=%ld (conserved total %ld)\n",
              bank.balances[101], bank.balances[102],
              bank.balances[101] + bank.balances[102]);
  return 0;
}
