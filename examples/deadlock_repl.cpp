// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Interactive / scripted deadlock explorer.  Reads the scenario language
// of core/script.h from a file or stdin:
//
//   $ ./deadlock_repl                        # interactive REPL
//   $ ./deadlock_repl scenario.twbg          # run a script file
//   $ echo "acquire 1 1 X" | ./deadlock_repl -
//   $ ./deadlock_repl --trace-out=events.jsonl scenario.twbg
//   $ ./deadlock_repl --remote=127.0.0.1:7762 scenario.twbg
//   $ ./deadlock_repl --service scenario.twbg
//
// Back ends:
//   (default)          the classic in-process ScriptRunner over a raw
//                      lock manager + periodic detector;
//   --service          a periodic-engine ConcurrentLockService driven
//                      through InProcessClient (same surface as remote);
//   --remote=HOST:PORT a live twbg-serverd daemon via net::TcpClient.
//
// --trace-out=<file> streams every structured event (lock grants/blocks,
// detection passes, resolutions) as JSON lines; the `obs` command prints
// the aggregated report at any point.  Both are classic-back-end only:
// through a LockClient the event stream lives in the service process.
//
// With no arguments and a TTY, type `help` for the command list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/script.h"
#include "net/tcp_client.h"
#include "txn/client_script.h"
#include "txn/concurrent_service.h"

namespace {

constexpr const char* kHelp = R"(commands:
  acquire <txn> <resource> <mode>   mode: IS IX S SIX X
  release <txn>
  cost <txn> <value>
  detect
  table | graph | tst | dot | cycles | oracle | costs
  expect granted|blocked|alreadyheld
  expect-deadlock yes|no
  expect-aborted <txn> ...
  obs                               event counts + latency histograms
  postmortem                        forensics of the last detect's cycles
  reset
  help | quit
)";

// The two runner kinds behind one line-at-a-time interface.
class LineRunner {
 public:
  virtual ~LineRunner() = default;
  virtual twbg::Status ExecuteLine(const std::string& line,
                                   std::string* out) = 0;
};

class ClassicRunner final : public LineRunner {
 public:
  explicit ClassicRunner(twbg::core::ScriptOptions options)
      : runner_(options) {}
  twbg::Status StreamEventsTo(const std::string& path) {
    return runner_.StreamEventsTo(path);
  }
  twbg::Status ExecuteLine(const std::string& line,
                           std::string* out) override {
    return runner_.ExecuteLine(line, out);
  }

 private:
  twbg::core::ScriptRunner runner_;
};

class ClientRunner final : public LineRunner {
 public:
  ClientRunner(std::unique_ptr<twbg::LockClient> client,
               std::unique_ptr<twbg::txn::ConcurrentLockService> service,
               twbg::txn::ClientScriptOptions options)
      : service_(std::move(service)),
        client_(std::move(client)),
        runner_(client_.get(), options) {}
  twbg::Status ExecuteLine(const std::string& line,
                           std::string* out) override {
    return runner_.ExecuteLine(line, out);
  }

 private:
  // Declaration order is the lifetime order: the service (non-null only
  // for --service) must outlive the client that drives it, which must
  // outlive the runner.
  std::unique_ptr<twbg::txn::ConcurrentLockService> service_;
  std::unique_ptr<twbg::LockClient> client_;
  twbg::txn::ClientScriptRunner runner_;
};

int RunStream(std::istream& in, bool interactive, LineRunner* runner) {
  std::string line;
  if (interactive) {
    std::printf("twbg deadlock explorer — type 'help'\n");
  }
  while (true) {
    if (interactive) {
      std::printf("twbg> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::printf("%s", kHelp);
      continue;
    }
    std::string out;
    twbg::Status status = runner->ExecuteLine(line, &out);
    std::printf("%s", out.c_str());
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      if (!interactive) return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string remote;
  bool service_mode = false;
  const char* script = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--remote=", 9) == 0) {
      remote = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--service") == 0) {
      service_mode = true;
    } else {
      script = argv[i];
    }
  }
  const bool interactive = script == nullptr;
  const bool echo = !interactive;

  std::unique_ptr<LineRunner> runner;
  if (!remote.empty()) {
    const size_t colon = remote.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--remote wants HOST:PORT, got '%s'\n",
                   remote.c_str());
      return 1;
    }
    twbg::net::ClientOptions options;
    options.host = remote.substr(0, colon);
    options.port =
        static_cast<uint16_t>(std::strtoul(remote.c_str() + colon + 1,
                                           nullptr, 10));
    auto client = twbg::net::TcpClient::Create(options);
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    runner = std::make_unique<ClientRunner>(
        std::move(*client), nullptr,
        twbg::txn::ClientScriptOptions{.echo = echo});
  } else if (service_mode) {
    twbg::txn::ConcurrentServiceOptions options;
    options.detection_mode = twbg::txn::DetectionMode::kPeriodic;
    auto service = twbg::txn::ConcurrentLockService::Create(options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    auto client = twbg::txn::InProcessClient::Create(service->get());
    if (!client.ok()) {
      std::fprintf(stderr, "client: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    runner = std::make_unique<ClientRunner>(
        std::move(*client), std::move(*service),
        twbg::txn::ClientScriptOptions{.echo = echo});
  } else {
    auto classic = std::make_unique<ClassicRunner>(
        twbg::core::ScriptOptions{.echo = echo});
    if (!trace_out.empty()) {
      twbg::Status status = classic->StreamEventsTo(trace_out);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    runner = std::move(classic);
  }
  if (!trace_out.empty() && (!remote.empty() || service_mode)) {
    std::fprintf(stderr,
                 "--trace-out is only available with the classic back end\n");
    return 1;
  }

  if (script != nullptr && std::strcmp(script, "-") != 0) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script);
      return 1;
    }
    return RunStream(file, /*interactive=*/false, runner.get());
  }
  return RunStream(std::cin, interactive, runner.get());
}
