// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Interactive / scripted deadlock explorer.  Reads the scenario language
// of core/script.h from a file or stdin:
//
//   $ ./deadlock_repl                        # interactive REPL
//   $ ./deadlock_repl scenario.twbg          # run a script file
//   $ echo "acquire 1 1 X" | ./deadlock_repl -
//
// With no arguments and a TTY, type `help` for the command list.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/script.h"

namespace {

constexpr const char* kHelp = R"(commands:
  acquire <txn> <resource> <mode>   mode: IS IX S SIX X
  release <txn>
  cost <txn> <value>
  detect
  table | graph | tst | dot | cycles | oracle | costs
  expect granted|blocked|alreadyheld
  expect-deadlock yes|no
  expect-aborted <txn> ...
  reset
  help | quit
)";

int RunStream(std::istream& in, bool interactive) {
  twbg::core::ScriptOptions options;
  options.echo = !interactive;
  twbg::core::ScriptRunner runner(options);
  std::string line;
  if (interactive) {
    std::printf("twbg deadlock explorer — type 'help'\n");
  }
  while (true) {
    if (interactive) {
      std::printf("twbg> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::printf("%s", kHelp);
      continue;
    }
    std::string out;
    twbg::Status status = runner.ExecuteLine(line, &out);
    std::printf("%s", out.c_str());
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      if (!interactive) return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "-") != 0) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return RunStream(file, /*interactive=*/false);
  }
  return RunStream(std::cin, /*interactive=*/argc <= 1);
}
