// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Interactive / scripted deadlock explorer.  Reads the scenario language
// of core/script.h from a file or stdin:
//
//   $ ./deadlock_repl                        # interactive REPL
//   $ ./deadlock_repl scenario.twbg          # run a script file
//   $ echo "acquire 1 1 X" | ./deadlock_repl -
//   $ ./deadlock_repl --trace-out=events.jsonl scenario.twbg
//
// --trace-out=<file> streams every structured event (lock grants/blocks,
// detection passes, resolutions) as JSON lines; the `obs` command prints
// the aggregated report at any point.
//
// With no arguments and a TTY, type `help` for the command list.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/script.h"

namespace {

constexpr const char* kHelp = R"(commands:
  acquire <txn> <resource> <mode>   mode: IS IX S SIX X
  release <txn>
  cost <txn> <value>
  detect
  table | graph | tst | dot | cycles | oracle | costs
  expect granted|blocked|alreadyheld
  expect-deadlock yes|no
  expect-aborted <txn> ...
  obs                               event counts + latency histograms
  postmortem                        forensics of the last detect's cycles
  reset
  help | quit
)";

int RunStream(std::istream& in, bool interactive,
              const std::string& trace_out) {
  twbg::core::ScriptOptions options;
  options.echo = !interactive;
  twbg::core::ScriptRunner runner(options);
  if (!trace_out.empty()) {
    twbg::Status status = runner.StreamEventsTo(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::string line;
  if (interactive) {
    std::printf("twbg deadlock explorer — type 'help'\n");
  }
  while (true) {
    if (interactive) {
      std::printf("twbg> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::printf("%s", kHelp);
      continue;
    }
    std::string out;
    twbg::Status status = runner.ExecuteLine(line, &out);
    std::printf("%s", out.c_str());
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      if (!interactive) return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  const char* script = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      script = argv[i];
    }
  }
  if (script != nullptr && std::strcmp(script, "-") != 0) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script);
      return 1;
    }
    return RunStream(file, /*interactive=*/false, trace_out);
  }
  return RunStream(std::cin, /*interactive=*/script == nullptr, trace_out);
}
