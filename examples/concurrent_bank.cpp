// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Multi-threaded bank: N worker threads move money between hot accounts
// with crossing lock orders.  The ConcurrentLockService wrapper parks
// waiters on condition variables and resolves every deadlock inline via
// the continuous H/W-TWBG detector — workers just retry on Aborted.
//
//   $ ./concurrent_bank [threads] [transfers_per_thread]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "txn/concurrent_service.h"

int main(int argc, char** argv) {
  using namespace twbg;
  using enum lock::LockMode;

  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int transfers = argc > 2 ? std::atoi(argv[2]) : 200;
  constexpr int kAccounts = 4;

  Result<std::unique_ptr<txn::ConcurrentLockService>> created =
      txn::ConcurrentLockService::Create(txn::ConcurrentServiceOptions{});
  if (!created.ok()) {
    std::printf("service: %s\n", created.status().ToString().c_str());
    return 1;
  }
  txn::ConcurrentLockService& service = **created;
  std::vector<long> balances(kAccounts + 1, 10'000);
  std::mutex balances_mu;  // protects the application data only

  std::atomic<int> committed{0};
  std::atomic<int> retries{0};

  auto worker = [&](int id) {
    for (int i = 0; i < transfers; ++i) {
      // Crossing orders between two hot accounts force deadlocks.
      lock::ResourceId from = 1 + (id + i) % kAccounts;
      lock::ResourceId to = 1 + (id + i + 1) % kAccounts;
      if (id % 2 == 1) std::swap(from, to);
      for (int attempt = 1;; ++attempt) {
        // Back off after a deadlock abort, like any sane application —
        // immediate retries just re-create the same cycle.
        if (attempt > 1) {
          ++retries;
          std::this_thread::sleep_for(std::chrono::microseconds(
              50 * std::min(attempt, 16)));
        }
        lock::TransactionId t = *service.Begin();
        Status s1 = service.AcquireBlocking(t, from, kX);
        if (s1.IsAborted()) continue;
        std::this_thread::yield();  // widen the deadlock window for demo
        Status s2 = service.AcquireBlocking(t, to, kX);
        if (s2.IsAborted()) continue;
        {
          std::lock_guard<std::mutex> g(balances_mu);
          balances[from] -= 10;
          balances[to] += 10;
        }
        (void)service.Commit(t);
        ++committed;
        break;
      }
    }
  };

  std::printf("%d threads x %d transfers over %d hot accounts...\n", threads,
              transfers, kAccounts);
  std::vector<std::thread> pool;
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker, i);
  for (std::thread& t : pool) t.join();

  long total = 0;
  for (int a = 1; a <= kAccounts; ++a) total += balances[a];
  std::printf("committed=%d deadlock_victims=%zu retries=%d\n",
              committed.load(), service.deadlock_victims(), retries.load());
  std::printf("balance total=%ld (expected %d) -> %s\n", total,
              kAccounts * 10'000,
              total == kAccounts * 10'000 ? "conserved" : "CORRUPTED");
  return total == kAccounts * 10'000 ? 0 : 1;
}
