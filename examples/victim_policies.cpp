// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Policy playground: runs the same contended workload under different
// resolver configurations (TDR-2 on/off, abortion-list processing orders)
// and prints a comparison table — a miniature of the exp_ablation_policies
// experiment.
//
//   $ ./victim_policies [seed]

#include <cstdio>
#include <cstdlib>

#include "baselines/hwtwbg_strategy.h"
#include "common/string_util.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace twbg;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  struct Config {
    const char* label;
    core::DetectorOptions options;
  };
  std::vector<Config> configs;
  {
    Config c{"tdr2 + reverse-insertion (paper)", {}};
    configs.push_back(c);
  }
  {
    Config c{"tdr2 disabled (abort-only)", {}};
    c.options.enable_tdr2 = false;
    configs.push_back(c);
  }
  {
    Config c{"insertion-order abort list", {}};
    c.options.abort_order = core::AbortOrder::kInsertion;
    configs.push_back(c);
  }
  {
    Config c{"cost-ascending abort list", {}};
    c.options.abort_order = core::AbortOrder::kCostAscending;
    configs.push_back(c);
  }

  std::printf("%-36s %10s %8s %8s %8s %8s\n", "configuration", "ticks",
              "aborts", "tdr2", "wasted", "spared?");
  for (const Config& config : configs) {
    sim::SimConfig sc;
    sc.workload.seed = seed;
    sc.workload.num_transactions = 300;
    sc.workload.concurrency = 10;
    sc.workload.num_resources = 10;
    sc.workload.zipf_theta = 0.9;
    sc.workload.conversion_prob = 0.3;
    sc.workload.mode_weights = {0.3, 0.2, 0.25, 0.05, 0.2};
    sc.detection_period = 8;
    sim::Simulator sim(
        sc, std::make_unique<baselines::HwTwbgPeriodicStrategy>(
                config.options));
    sim::SimMetrics m = sim.Run();
    std::printf("%-36s %10zu %8zu %8zu %8zu %8s\n", config.label, m.ticks,
                m.deadlock_aborts, m.no_abort_resolutions, m.wasted_ops,
                m.timed_out ? "TIMEOUT" : "-");
  }
  std::printf(
      "\ntdr2 = deadlocks resolved by queue repositioning (no abort).\n");
  return 0;
}
